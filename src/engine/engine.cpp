#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "common/expect.h"
#include "common/timer.h"
#include "obs/instrumented_source.h"

namespace tiresias::engine {

namespace {

using tiresias::monotonicNanos;

// Engine snapshot section tags (see persist/snapshot.h for the framing).
constexpr std::uint32_t kMetaSectionTag = 1;    // stream count
constexpr std::uint32_t kStreamSectionTag = 2;  // one per stream
constexpr std::uint32_t kUserSectionTag = 3;    // ExtraWriter payload

// Hibernation files are single-section snapshots (same framing, own tag).
constexpr std::uint32_t kHibernateSectionTag = 1;

/// The serialized pipeline state inside a hibernation file. Framing or
/// tag mismatch means the file is not ours (or corrupt) — SnapshotError.
std::vector<std::uint8_t> readHibernationFile(const std::string& path) {
  const persist::SnapshotReader reader = persist::SnapshotReader::readFile(path);
  persist::Deserializer::require(
      reader.sections().size() == 1 &&
          reader.sections()[0].tag == kHibernateSectionTag,
      "hibernation snapshot has unexpected sections");
  return reader.sections()[0].payload;
}

/// Marker for "no stream to protect" in enforceResidentCap.
constexpr std::size_t kNoProtect = static_cast<std::size_t>(-1);

void writeRunSummary(persist::Serializer& out, const RunSummary& s) {
  out.u64(s.unitsProcessed);
  out.u64(s.recordsProcessed);
  out.u64(s.instancesDetected);
  out.u64(s.anomaliesReported);
  out.u64(s.junkRowsSkipped);
  out.u64(s.warmupUnitsBuffered);
  out.u64(s.seasons.size());
  for (const auto& season : s.seasons) {
    out.u64(season.period);
    out.f64(season.weight);
  }
}

RunSummary readRunSummary(persist::Deserializer& in) {
  RunSummary s;
  s.unitsProcessed = in.u64();
  s.recordsProcessed = in.u64();
  s.instancesDetected = in.u64();
  s.anomaliesReported = in.u64();
  s.junkRowsSkipped = in.u64();
  s.warmupUnitsBuffered = in.u64();
  const std::size_t seasons =
      in.count(sizeof(std::uint64_t) + sizeof(double));
  s.seasons.resize(seasons);
  for (auto& season : s.seasons) {
    season.period = in.boundedCount(persist::kMaxUnbackedCount);
    season.weight = in.f64();
  }
  return s;
}

}  // namespace

/// One registered stream: the pipeline plus everything it consumes.
struct DetectionEngine::StreamState {
  std::string name;
  std::unique_ptr<RecordSource> source;
  TiresiasPipeline pipeline;
  /// Cumulative counters; written only by the worker currently owning the
  /// stream (serialized by the scheduler), read after the pools stop.
  RunSummary summary;
  // Mirrors of the summary that stats() may poll while the pools run.
  std::atomic<std::size_t> sourceSkipped{0};
  std::atomic<std::size_t> warmupBuffered{0};
  std::atomic<std::size_t> recordsProcessed{0};
  std::atomic<std::size_t> instancesDetected{0};
  std::atomic<std::size_t> anomaliesReported{0};
  /// Resident bytes of the stream's dense detection workspace, refreshed
  /// by the owning worker after each claim (stats() polls it live).
  std::atomic<std::size_t> workspaceBytes{0};
  /// Ingest-side batcher state; null until ingest begins. Touched only by
  /// the stream's single ingest thread.
  std::unique_ptr<TimeUnitBatcher> batcher;
  bool exhausted = false;
  /// Junk rows carried over from a restored checkpoint; the live skip
  /// count is junkBase + the (fresh) source's own accounting. Written
  /// before start(), read by the ingest thread.
  std::size_t junkBase = 0;

  // --- Residency/paging (hibernation) state ---
  /// Serializes paging transitions against use: the owning worker holds it
  /// across wake + advance; an evictor try_locks it (and skips the stream
  /// when a worker owns it). Never acquired while holding residencyMu_
  /// except via try_lock, so lock order cannot deadlock.
  std::mutex pageMu;
  /// True when the pipeline is a shell and the state lives in
  /// hibernationBlob or the stream's hibernation file. Guarded by pageMu.
  bool hibernated = false;
  bool hibernatedToDisk = false;
  std::vector<std::uint8_t> hibernationBlob;
  /// LRU membership; guarded by the engine's residencyMu_.
  bool inLru = false;
  std::list<std::size_t>::iterator lruIt{};
  /// Cheap resident-count path when no cap is set. Owned by whichever
  /// worker currently has the stream (serialized by the scheduler).
  bool everAdvanced = false;

  StreamState(std::string streamName,
              std::shared_ptr<const Hierarchy> hierarchy,
              PipelineConfig config, std::unique_ptr<RecordSource> src)
      : name(std::move(streamName)),
        source(std::move(src)),
        pipeline(std::move(hierarchy), std::move(config)) {}
};

DetectionEngine::DetectionEngine(EngineConfig config, ResultSink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.workers == 0) {
    config_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  TIRESIAS_EXPECT(config_.ingestThreads > 0,
                  "engine needs at least one ingest thread");
  TIRESIAS_EXPECT(config_.runBudget > 0, "run budget must be positive");
  TIRESIAS_EXPECT(config_.streamQueueCapacity > 0,
                  "per-stream queue capacity must be positive");
  TIRESIAS_EXPECT(config_.totalQueueCapacity > 0,
                  "total queue capacity must be positive");
  if (config_.metrics) {
    // Shard plan: [0] unbound callers, [1..W] workers, [W+1..W+I] ingest
    // threads, [W+I+1] the gauge sampler.
    registry_ = std::make_unique<obs::MetricsRegistry>(
        config_.workers + config_.ingestThreads + 2);
  }
  SchedulerConfig scfg;
  scfg.workers = config_.workers;
  scfg.runBudget = config_.runBudget;
  scfg.streamQueueCapacity = config_.streamQueueCapacity;
  scfg.totalQueueCapacity = config_.totalQueueCapacity;
  scfg.metrics = registry_.get();
  scfg.metricsShardBase = 1;
  scheduler_ = std::make_unique<Scheduler>(
      scfg, [this](std::size_t w, std::size_t id, TimeUnitBatch& b) {
        processOne(w, id, b);
      });
  recycleCap_ =
      config_.totalQueueCapacity + config_.workers + config_.ingestThreads;
  // Workspace pool: one scratch workspace per worker, lent to whichever
  // stream that worker advances. Allocated empty here; each bind() sizes
  // it to the stream's hierarchy.
  workspacePool_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workspacePool_.push_back(std::make_shared<DetectWorkspace>());
  }
  poolBytes_ = std::vector<std::atomic<std::size_t>>(config_.workers);
  if (!config_.hibernateDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.hibernateDir, ec);
    // A failure here is not fatal: hibernateStream falls back to the
    // in-memory blob when the file write fails.
  }
}

DetectionEngine::~DetectionEngine() { stop(); }

std::size_t DetectionEngine::addStream(std::string name,
                                       std::shared_ptr<const Hierarchy> hierarchy,
                                       PipelineConfig config,
                                       std::unique_ptr<RecordSource> source) {
  TIRESIAS_EXPECT(!started_.load(), "addStream() after start()");
  TIRESIAS_EXPECT(hierarchy != nullptr, "stream needs a hierarchy");
  TIRESIAS_EXPECT(source != nullptr, "stream needs a source");
  if (registry_) {
    // Separate the raw source pull (kSourceFetch) from the batcher's
    // unit-slicing on top of it (kBatchFlush).
    source = std::make_unique<obs::InstrumentedSource>(std::move(source),
                                                       registry_.get());
  }
  // Registry of distinct hierarchies: holding the handle here guarantees
  // the hierarchy outlives the engine; dedupe by object identity so the
  // stats can report how much structure is actually shared.
  if (hierarchyKeys_.insert(hierarchy.get()).second) {
    hierarchies_.push_back(hierarchy);
  }
  const std::size_t id = streams_.size();
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), std::move(hierarchy), std::move(config),
      std::move(source)));
  streams_.back()->pipeline.bindMetrics(registry_.get());
  const std::size_t schedId = scheduler_->addStream();
  TIRESIAS_EXPECT(schedId == id, "scheduler/stream id mismatch");
  return id;
}

const std::string& DetectionEngine::streamName(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  return streams_[id]->name;
}

void DetectionEngine::start() {
  TIRESIAS_EXPECT(!started_.load(), "start() called twice");
  startNs_.store(monotonicNanos(), std::memory_order_release);
  {
    std::lock_guard lk(pauseMutex_);
    activeIngest_ = config_.ingestThreads;
  }
  started_.store(true, std::memory_order_release);
  scheduler_->start();
  ingestPool_.reserve(config_.ingestThreads);
  for (std::size_t t = 0; t < config_.ingestThreads; ++t) {
    ingestPool_.emplace_back([this, t] { ingestLoop(t); });
  }
  if (registry_ && config_.metricsSampleMillis > 0) {
    sampler_ = std::thread([this] { samplerLoop(); });
  }
}

void DetectionEngine::samplerLoop() {
  obs::bindThreadShard(config_.workers + config_.ingestThreads + 1);
  std::unique_lock lk(samplerMutex_);
  for (;;) {
    if (samplerCv_.wait_for(
            lk, std::chrono::milliseconds(config_.metricsSampleMillis),
            [&] { return samplerStop_; })) {
      return;
    }
    lk.unlock();
    sampleGauges();
    lk.lock();
  }
}

void DetectionEngine::sampleGauges() {
  const SchedulerStats sched = scheduler_->stats();
  registry_->recordValue(obs::Gauge::kReadyStreams, sched.readyStreams);
  registry_->recordValue(obs::Gauge::kQueuedUnits, sched.queuedUnits);
  std::size_t deepest = 0;
  std::size_t busiest = 0;
  std::size_t total = 0;
  for (const auto& q : scheduler_->allStreamStats()) {
    deepest = std::max(deepest, q.queueDepth);
    busiest = std::max(busiest, q.unitsProcessed);
    total += q.unitsProcessed;
  }
  registry_->recordValue(obs::Gauge::kMaxStreamQueueDepth, deepest);
  // Workspace residency: the per-worker pool (mirrored into poolBytes_ by
  // the owning workers — never read off a live workspace, which a worker
  // could be rebinding) plus any stream-owned workspaces.
  std::size_t workspace = 0;
  for (const auto& bytes : poolBytes_) {
    workspace += bytes.load(std::memory_order_relaxed);
  }
  for (const auto& stream : streams_) {
    workspace += stream->workspaceBytes.load(std::memory_order_relaxed);
  }
  registry_->recordValue(obs::Gauge::kWorkspaceBytes, workspace);
  registry_->recordValue(obs::Gauge::kResidentStreams,
                         residentCount_.load(std::memory_order_relaxed));
  registry_->recordValue(obs::Gauge::kHibernatedStreams,
                         hibernatedCount_.load(std::memory_order_relaxed));
  if (total > 0) {
    registry_->recordValue(obs::Gauge::kBusiestStreamPpm,
                           busiest * 1'000'000 / total);
  }
  if (gaugeSampler_) gaugeSampler_(*registry_);
}

void DetectionEngine::stopSampler() {
  {
    std::lock_guard lk(samplerMutex_);
    samplerStop_ = true;
  }
  samplerCv_.notify_all();
  if (sampler_.joinable()) {
    sampler_.join();
    // One parting sample, so short runs (drained before the first period
    // elapsed) still expose every gauge.
    sampleGauges();
  }
}

std::vector<Record> DetectionEngine::takeRecycled() {
  std::lock_guard lock(recycleMutex_);
  if (recycle_.empty()) return {};
  std::vector<Record> buf = std::move(recycle_.back());
  recycle_.pop_back();
  return buf;
}

void DetectionEngine::recycleBuffer(std::vector<Record>&& buf) {
  buf.clear();
  std::lock_guard lock(recycleMutex_);
  if (recycle_.size() < recycleCap_) recycle_.push_back(std::move(buf));
}

void DetectionEngine::maybePauseIngest() {
  if (!ingestPauseFlag_.load(std::memory_order_acquire)) return;
  std::unique_lock lk(pauseMutex_);
  while (ingestPaused_ && !stopRequested_.load(std::memory_order_relaxed)) {
    ++pausedIngest_;
    pauseAckCv_.notify_all();
    pauseCv_.wait(lk);
    --pausedIngest_;
  }
}

void DetectionEngine::ingestLoop(std::size_t threadIndex) {
  obs::bindThreadShard(config_.workers + 1 + threadIndex);
  // Static partition: stream id modulo pool size. One producer per stream
  // preserves source order; the scheduler takes care of the rest.
  std::vector<std::pair<std::size_t, StreamState*>> mine;
  for (std::size_t id = threadIndex; id < streams_.size();
       id += config_.ingestThreads) {
    StreamState* s = streams_[id].get();
    // Batching starts at the pipeline's resume position: the configured
    // startTime normally, or the first unprocessed unit after a restore
    // (the already-processed prefix of a replayed source is dropped).
    // A pipeline that has actually progressed (restored from a checkpoint
    // or woken from hibernation) additionally seeds live sources with the
    // position, so a source that negotiates with its producer (resumable
    // SocketSource) can tell a reconnecting client to skip the processed
    // prefix. Fresh pipelines (resumeTime == startTime) seed nothing —
    // their first connection is not a resume.
    if (s->pipeline.resumeTime() > s->pipeline.config().startTime) {
      s->source->noteResumePoint(s->pipeline.resumeTime());
    }
    s->batcher = std::make_unique<TimeUnitBatcher>(
        *s->source, s->pipeline.config().delta, s->pipeline.resumeTime());
    mine.emplace_back(id, s);
  }
  // Round-robin one timeunit per stream per sweep, so every stream
  // advances at a similar pace. A stream whose queue is full is skipped
  // (its backlog is the workers' problem, not its neighbors'); when no
  // stream accepts anything in a whole sweep, park until a unit drains.
  std::size_t live = mine.size();
  TimeUnitBatch batch;
  while (live > 0 && !stopRequested_.load(std::memory_order_relaxed)) {
    bool progressed = false;
    for (auto& [id, stream] : mine) {
      if (stream->exhausted) continue;
      if (stopRequested_.load(std::memory_order_relaxed)) break;
      // A checkpoint parks producers here, mid-sweep, so quiesce latency
      // is one unit per stream, not a whole sweep.
      maybePauseIngest();
      if (!scheduler_->canAccept(id)) continue;  // backpressure: skip
      // Batch into a buffer recycled from the workers (allocation-free
      // once the pool is primed).
      batch.records = takeRecycled();
      TimeUnitBatcher::Pull pull;
      {
        // kBatchFlush covers the whole unit assembly; the source pulls
        // inside it record as kSourceFetch (nested span).
        obs::StageSpan flush(registry_.get(), obs::Stage::kBatchFlush);
        pull = stream->batcher->pull(batch);
      }
      stream->sourceSkipped.store(
          stream->junkBase + stream->source->skippedRecords(),
          std::memory_order_relaxed);
      if (pull == TimeUnitBatcher::Pull::kIdle) {
        // The source is alive but has nothing yet (a live socket stream
        // between connections or frames). Its bounded idle wait paced
        // this sweep already, so count it as progress — parking in
        // waitForSpace would wedge an all-idle sweep — and revisit; the
        // next maybePauseIngest() keeps checkpoint quiesce responsive.
        recycleBuffer(std::move(batch.records));
        progressed = true;
        continue;
      }
      if (pull == TimeUnitBatcher::Pull::kEnd) {
        stream->exhausted = true;
        --live;
        scheduler_->finishStream(id);
        recycleBuffer(std::move(batch.records));
        progressed = true;
        continue;
      }
      // Stamp for the end-to-end unit-latency histogram (enqueue ->
      // processed; sampled on the worker side).
      batch.enqueueNs = registry_ ? monotonicNanos() : 0;
      if (!scheduler_->submit(id, std::move(batch))) break;  // stopping
      progressed = true;
    }
    if (stopRequested_.load(std::memory_order_relaxed)) break;
    if (!progressed && live > 0) {
      if (!scheduler_->waitForSpace()) break;  // stopping
    }
  }
  // Exit is visible to a checkpointer waiting for pause acks: a finished
  // thread counts as paused.
  std::lock_guard lk(pauseMutex_);
  --activeIngest_;
  pauseAckCv_.notify_all();
}

void DetectionEngine::processOne(std::size_t workerIndex, std::size_t id,
                                 TimeUnitBatch& batch) {
  StreamState& stream = *streams_[id];
  RunSummary& sum = stream.summary;
  const std::size_t instancesBefore = sum.instancesDetected;
  const std::size_t anomaliesBefore = sum.anomaliesReported;
  const std::size_t batchRecords = batch.records.size();
  {
    // pageMu pins the stream resident for the whole advance: an evictor
    // that try_locks it while we hold it simply skips this stream.
    std::lock_guard page(stream.pageMu);
    // Lend this worker's pooled workspace to the stream. Attach before
    // waking so a wake's detector rebuild binds the pooled workspace
    // instead of allocating a private one.
    stream.pipeline.attachWorkspace(workspacePool_[workerIndex]);
    if (stream.hibernated) wakeStream(id, stream);
    stream.pipeline.processUnit(
        batch,
        [&](const InstanceResult& r) {
          if (sink_) {
            obs::StageSpan span(registry_.get(), obs::Stage::kReportSink);
            sink_(stream.name, r);
          }
        },
        sum);
    // Refresh the pool-bytes mirror while we still own the workspace (the
    // sampler reads the mirror, never the live workspace).
    poolBytes_[workerIndex].store(workspacePool_[workerIndex]->bytes(),
                                  std::memory_order_relaxed);
    noteAdvanced(id, stream);
  }
  if (registry_ && batch.enqueueNs > 0) {
    const std::int64_t waited = monotonicNanos() - batch.enqueueNs;
    if (waited > 0) {
      registry_->recordLatencyNs(obs::Stage::kUnitLatency,
                                 static_cast<std::uint64_t>(waited));
    }
  }
  stream.warmupBuffered.store(sum.warmupUnitsBuffered,
                              std::memory_order_relaxed);
  stream.recordsProcessed.fetch_add(batchRecords, std::memory_order_relaxed);
  stream.instancesDetected.fetch_add(sum.instancesDetected - instancesBefore,
                                     std::memory_order_relaxed);
  stream.anomaliesReported.fetch_add(sum.anomaliesReported - anomaliesBefore,
                                     std::memory_order_relaxed);
  recycleBuffer(std::move(batch.records));
  enforceResidentCap(id);
}

std::string DetectionEngine::hibernatePath(std::size_t id) const {
  return config_.hibernateDir + "/stream-" + std::to_string(id) + ".tsnap";
}

void DetectionEngine::wakeStream(std::size_t id, StreamState& stream) {
  obs::StageSpan span(registry_.get(), obs::Stage::kHibernateRestore);
  if (stream.hibernatedToDisk) {
    const std::vector<std::uint8_t> payload =
        readHibernationFile(hibernatePath(id));
    persist::Deserializer in(payload);
    stream.pipeline.wake(in);
    persist::Deserializer::require(
        in.atEnd(), "hibernation snapshot corrupt: trailing bytes");
    std::error_code ec;
    std::filesystem::remove(hibernatePath(id), ec);  // best-effort cleanup
  } else {
    persist::Deserializer in(stream.hibernationBlob);
    stream.pipeline.wake(in);
    persist::Deserializer::require(
        in.atEnd(), "hibernation blob corrupt: trailing bytes");
    stream.hibernationBlob.clear();
    stream.hibernationBlob.shrink_to_fit();
  }
  stream.hibernated = false;
  stream.hibernatedToDisk = false;
  hibernatedCount_.fetch_sub(1, std::memory_order_relaxed);
  wakes_.fetch_add(1, std::memory_order_relaxed);
}

void DetectionEngine::hibernateStream(std::size_t id, StreamState& stream) {
  persist::Serializer state;
  stream.pipeline.hibernate(state);
  if (!config_.hibernateDir.empty()) {
    try {
      persist::SnapshotWriter writer;
      writer.addSection(kHibernateSectionTag, state);
      writer.writeFile(hibernatePath(id));
      stream.hibernatedToDisk = true;
      stream.hibernationBlob.clear();
      stream.hibernationBlob.shrink_to_fit();
    } catch (const persist::SnapshotError&) {
      // Disk refused the snapshot; keep the state in memory instead of
      // losing it (the eviction still sheds the live detector's footprint).
      stream.hibernatedToDisk = false;
      stream.hibernationBlob = state.data();
    }
  } else {
    stream.hibernatedToDisk = false;
    stream.hibernationBlob = state.data();
  }
  stream.hibernated = true;
  hibernatedCount_.fetch_add(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void DetectionEngine::noteAdvanced(std::size_t id, StreamState& stream) {
  if (config_.maxResidentStreams == 0) {
    // No cap: no LRU to keep, just count first-time residency. The flag is
    // owned by the worker currently holding the stream (scheduler
    // serialization), so a plain bool is race-free.
    if (!stream.everAdvanced) {
      stream.everAdvanced = true;
      residentCount_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::lock_guard lk(residencyMu_);
  if (!stream.inLru) {
    lru_.push_back(id);
    stream.lruIt = std::prev(lru_.end());
    stream.inLru = true;
    residentCount_.fetch_add(1, std::memory_order_relaxed);
  } else {
    lru_.splice(lru_.end(), lru_, stream.lruIt);
  }
}

void DetectionEngine::enforceResidentCap(std::size_t protectId) {
  if (config_.maxResidentStreams == 0) return;
  for (;;) {
    StreamState* victim = nullptr;
    std::size_t victimId = kNoProtect;
    {
      std::lock_guard lk(residencyMu_);
      if (residentCount_.load(std::memory_order_relaxed) <=
          config_.maxResidentStreams) {
        return;
      }
      // Least-recently-advanced first. try_lock only: a stream owned by a
      // worker (or being evicted by a peer) is simply skipped — the cap is
      // best-effort by up to `workers` streams.
      for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (*it == protectId) continue;
        StreamState& candidate = *streams_[*it];
        if (!candidate.pageMu.try_lock()) continue;
        victimId = *it;
        victim = &candidate;
        lru_.erase(it);
        candidate.inLru = false;
        residentCount_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      if (victim == nullptr) return;  // everything evictable is busy
    }
    // Serialize outside residencyMu_ so eviction I/O never stalls other
    // workers' LRU bookkeeping.
    hibernateStream(victimId, *victim);
    victim->pageMu.unlock();
  }
}

EngineStats DetectionEngine::drain() {
  TIRESIAS_EXPECT(started_.load(), "drain() before start()");
  // drain() and stop() may be issued from different threads (a watchdog
  // stopping a draining engine); serialize them so the joined_ check and
  // the joins themselves can't interleave into a double-join.
  std::lock_guard control(controlMutex_);
  if (!joined_.load()) {
    // Each ingest thread ends on its own once its sources are exhausted,
    // finishing its streams; the scheduler closes the ready queue when the
    // last stream drains, which ends the workers.
    for (auto& t : ingestPool_) {
      if (t.joinable()) t.join();
    }
    scheduler_->drainAndJoin();
    stopSampler();
    finalElapsedNs_.store(monotonicNanos() - startNs_.load(std::memory_order_relaxed),
                          std::memory_order_release);
    joined_.store(true, std::memory_order_release);
  }
  return stats();
}

void DetectionEngine::stop() {
  if (!started_.load()) return;
  std::lock_guard control(controlMutex_);
  if (joined_.load()) return;
  stopRequested_.store(true);
  // Release ingest threads parked in a checkpoint pause, and a
  // checkpointer waiting for pause acks (its predicate observes
  // stopRequested_).
  {
    std::lock_guard lk(pauseMutex_);
  }
  pauseCv_.notify_all();
  pauseAckCv_.notify_all();
  // Releases parked producers (submit/waitForSpace return false), closes
  // the ready queue in discard mode and drops the queued backlog: stop()
  // means "discard queued work", in contrast to drain().
  scheduler_->stopAndJoin();
  for (auto& t : ingestPool_) {
    if (t.joinable()) t.join();
  }
  stopSampler();
  finalElapsedNs_.store(monotonicNanos() - startNs_.load(std::memory_order_relaxed),
                        std::memory_order_release);
  joined_.store(true, std::memory_order_release);
}

void DetectionEngine::checkpoint(const std::string& path,
                                 const ExtraWriter& extra) {
  std::lock_guard ckptLock(checkpointMutex_);
  const std::int64_t t0 = monotonicNanos();
  // While the pools run, snapshot at a quiescent unit boundary: park the
  // producers, then let the workers drain every queued unit. Once the
  // engine has drained/stopped (or was never started) the state is
  // already stable.
  const bool quiesced = started_.load(std::memory_order_acquire) &&
                        !joined_.load(std::memory_order_acquire);
  if (quiesced) {
    ingestPauseFlag_.store(true, std::memory_order_release);
    {
      std::unique_lock lk(pauseMutex_);
      ingestPaused_ = true;
      pauseAckCv_.wait(lk, [&] {
        return pausedIngest_ == activeIngest_ ||
               stopRequested_.load(std::memory_order_relaxed);
      });
    }
    scheduler_->quiesce();
  }
  const auto resume = [&] {
    if (!quiesced) return;
    {
      std::lock_guard lk(pauseMutex_);
      ingestPaused_ = false;
    }
    ingestPauseFlag_.store(false, std::memory_order_release);
    pauseCv_.notify_all();
  };

  std::size_t bytes = 0;
  std::size_t totalUnits = 0;
  try {
    persist::SnapshotWriter writer;
    {
      persist::Serializer meta;
      meta.u64(streams_.size());
      writer.addSection(kMetaSectionTag, meta);
    }
    for (std::size_t id = 0; id < streams_.size(); ++id) {
      StreamState& stream = *streams_[id];
      persist::Serializer payload;
      payload.str(stream.name);
      // The worker-side summary never sees the source, so the ingest-side
      // junk count lives only in the sourceSkipped mirror — fold it in at
      // snapshot time exactly like streamSummary() does at read time.
      RunSummary summary = stream.summary;
      summary.junkRowsSkipped =
          stream.sourceSkipped.load(std::memory_order_relaxed);
      writeRunSummary(payload, summary);
      // Workers are quiesced (or stopped), so pageMu is uncontended; hold
      // it anyway so the hibernated flag and blob can never be observed
      // mid-transition.
      std::lock_guard page(stream.pageMu);
      if (stream.hibernated) {
        // A hibernated stream's state is already serialized — splice the
        // blob in verbatim. hibernate() writes exactly the saveState
        // encoding, so the checkpoint is byte-identical either way.
        if (stream.hibernatedToDisk) {
          payload.raw(readHibernationFile(hibernatePath(id)));
        } else {
          payload.raw(stream.hibernationBlob);
        }
      } else {
        stream.pipeline.saveState(payload);
      }
      writer.addSection(kStreamSectionTag, payload);
      totalUnits += summary.unitsProcessed;
    }
    if (extra) {
      persist::Serializer user;
      extra(user);
      writer.addSection(kUserSectionTag, user);
    }
    bytes = writer.writeFile(path);
  } catch (...) {
    resume();
    throw;
  }
  resume();

  // Publish the counters through the seqlock so a concurrent stats()
  // poller never mixes fields of two checkpoints.
  const std::int64_t durationNs = monotonicNanos() - t0;
  if (registry_) {
    registry_->recordLatencyNs(obs::Stage::kCheckpointSave,
                               static_cast<std::uint64_t>(durationNs));
  }
  ckptSeq_.fetch_add(1, std::memory_order_relaxed);  // odd: write open
  std::atomic_thread_fence(std::memory_order_release);
  ckptCount_.fetch_add(1, std::memory_order_relaxed);
  ckptLastBytes_.store(bytes, std::memory_order_relaxed);
  ckptLastUnits_.store(totalUnits, std::memory_order_relaxed);
  ckptLastNs_.store(durationNs, std::memory_order_relaxed);
  ckptTotalNs_.fetch_add(durationNs, std::memory_order_relaxed);
  ckptSeq_.fetch_add(1, std::memory_order_release);  // even: write closed
}

std::size_t DetectionEngine::restoreFrom(const std::string& path,
                                         const ExtraReader& extra) {
  TIRESIAS_EXPECT(!started_.load(), "restoreFrom() after start()");
  std::lock_guard ckptLock(checkpointMutex_);
  obs::StageSpan restoreSpan(registry_.get(), obs::Stage::kCheckpointRestore);
  const persist::SnapshotReader reader = persist::SnapshotReader::readFile(path);
  bool sawMeta = false;
  std::size_t restored = 0;
  std::vector<bool> restoredIds(streams_.size(), false);
  for (const auto& section : reader.sections()) {
    persist::Deserializer in(section.payload);
    switch (section.tag) {
      case kMetaSectionTag:
        in.u64();  // stream count at save time; informational
        sawMeta = true;
        break;
      case kStreamSectionTag: {
        const std::string name = in.str();
        StreamState* stream = nullptr;
        std::size_t id = 0;
        for (; id < streams_.size(); ++id) {
          if (streams_[id]->name == name) {
            stream = streams_[id].get();
            break;
          }
        }
        persist::Deserializer::require(
            stream != nullptr,
            "checkpoint names a stream that is not registered");
        persist::Deserializer::require(
            !restoredIds[id], "checkpoint holds a stream twice");
        restoredIds[id] = true;
        RunSummary summary = readRunSummary(in);
        stream->pipeline.loadState(in);
        persist::Deserializer::require(
            in.atEnd(), "snapshot corrupt: trailing bytes in stream section");
        // The stream now holds live state: register it as resident (and
        // most recently used) so the cap enforcement below sees it.
        if (stream->pipeline.holdsState()) noteAdvanced(id, *stream);
        stream->summary = summary;
        stream->junkBase = summary.junkRowsSkipped;
        stream->sourceSkipped.store(summary.junkRowsSkipped,
                                    std::memory_order_relaxed);
        stream->warmupBuffered.store(summary.warmupUnitsBuffered,
                                     std::memory_order_relaxed);
        stream->recordsProcessed.store(summary.recordsProcessed,
                                       std::memory_order_relaxed);
        stream->instancesDetected.store(summary.instancesDetected,
                                        std::memory_order_relaxed);
        stream->anomaliesReported.store(summary.anomaliesReported,
                                        std::memory_order_relaxed);
        ++restored;
        break;
      }
      case kUserSectionTag:
        if (extra) extra(in);
        break;
      default:
        throw persist::SnapshotError("unknown snapshot section tag");
    }
  }
  persist::Deserializer::require(sawMeta,
                                 "snapshot is missing its meta section");
  // A restore materializes every snapshotted stream; page the coldest back
  // out until the resident cap holds, before the pools ever start.
  enforceResidentCap(kNoProtect);
  ckptSeq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  ckptRestores_.fetch_add(1, std::memory_order_relaxed);
  ckptSeq_.fetch_add(1, std::memory_order_release);
  return restored;
}

EngineStats DetectionEngine::stats() const {
  EngineStats out;
  out.streams = streams_.size();
  out.ingestThreads = config_.ingestThreads;
  if (scheduler_) out.scheduler = scheduler_->stats();
  out.scheduler.workers = config_.workers;
  out.backpressureWaits = out.scheduler.backpressureWaits;
  // One bulk snapshot: per-stream streamStats() calls in a loop would
  // take the scheduler lock once per stream against the hot path.
  std::vector<StreamQueueStats> queueStats;
  if (scheduler_) queueStats = scheduler_->allStreamStats();
  out.perStream.reserve(streams_.size());
  for (std::size_t id = 0; id < streams_.size(); ++id) {
    const StreamState& stream = *streams_[id];
    StreamStats s;
    s.name = stream.name;
    if (id < queueStats.size()) {
      const StreamQueueStats& q = queueStats[id];
      s.unitsIngested = q.unitsEnqueued;
      s.unitsProcessed = q.unitsProcessed;
      s.unitsDiscarded = q.unitsDiscarded;
      s.queueDepth = q.queueDepth;
      s.maxQueueDepth = q.maxQueueDepth;
      s.runs = q.runs;
      s.requeues = q.requeues;
    }
    s.recordsProcessed = stream.recordsProcessed.load(std::memory_order_relaxed);
    s.instancesDetected =
        stream.instancesDetected.load(std::memory_order_relaxed);
    s.anomaliesReported =
        stream.anomaliesReported.load(std::memory_order_relaxed);
    s.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
    s.warmupUnitsBuffered = stream.warmupBuffered.load(std::memory_order_relaxed);
    s.workspaceBytes = stream.workspaceBytes.load(std::memory_order_relaxed);
    out.unitsIngested += s.unitsIngested;
    out.unitsProcessed += s.unitsProcessed;
    out.unitsDiscarded += s.unitsDiscarded;
    out.recordsProcessed += s.recordsProcessed;
    out.instancesDetected += s.instancesDetected;
    out.anomaliesReported += s.anomaliesReported;
    out.junkRowsSkipped += s.junkRowsSkipped;
    out.warmupUnitsBuffered += s.warmupUnitsBuffered;
    out.workspaceBytes += s.workspaceBytes;
    out.maxQueueDepth = std::max(out.maxQueueDepth, s.maxQueueDepth);
    out.busiestStreamUnits = std::max(out.busiestStreamUnits, s.unitsProcessed);
    out.perStream.push_back(std::move(s));
  }
  if (out.unitsProcessed > 0) {
    out.busiestStreamShare = static_cast<double>(out.busiestStreamUnits) /
                             static_cast<double>(out.unitsProcessed);
  }
  // The pooled workspaces on top of any stream-owned ones (mirrors written
  // by the owning workers; see poolBytes_).
  for (const auto& bytes : poolBytes_) {
    out.workspaceBytes += bytes.load(std::memory_order_relaxed);
  }
  out.distinctHierarchies = hierarchies_.size();
  out.residentStreams = residentCount_.load(std::memory_order_relaxed);
  out.hibernatedStreams = hibernatedCount_.load(std::memory_order_relaxed);
  out.hibernateEvictions = evictions_.load(std::memory_order_relaxed);
  out.hibernateWakes = wakes_.load(std::memory_order_relaxed);
  // Seqlock read of the checkpoint counters: retry until a stable even
  // sequence brackets the field loads (all accesses atomic — tear-free
  // and TSan-clean while checkpoint()/restoreFrom() publish).
  for (;;) {
    const std::uint64_t s1 = ckptSeq_.load(std::memory_order_acquire);
    if ((s1 & 1) == 0) {
      out.checkpoint.checkpoints = ckptCount_.load(std::memory_order_relaxed);
      out.checkpoint.restores = ckptRestores_.load(std::memory_order_relaxed);
      out.checkpoint.lastBytes =
          ckptLastBytes_.load(std::memory_order_relaxed);
      out.checkpoint.lastUnits =
          ckptLastUnits_.load(std::memory_order_relaxed);
      out.checkpoint.lastSeconds =
          static_cast<double>(ckptLastNs_.load(std::memory_order_relaxed)) /
          1e9;
      out.checkpoint.totalSeconds =
          static_cast<double>(ckptTotalNs_.load(std::memory_order_relaxed)) /
          1e9;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (ckptSeq_.load(std::memory_order_relaxed) == s1) break;
    }
    std::this_thread::yield();
  }
  std::int64_t elapsedNs = 0;
  if (started_.load(std::memory_order_acquire)) {
    const std::int64_t fin = finalElapsedNs_.load(std::memory_order_acquire);
    elapsedNs =
        fin >= 0 ? fin : monotonicNanos() - startNs_.load(std::memory_order_acquire);
  }
  out.elapsedSeconds = static_cast<double>(elapsedNs) / 1e9;
  if (out.elapsedSeconds > 0.0) {
    out.recordsPerSecond =
        static_cast<double>(out.recordsProcessed) / out.elapsedSeconds;
  }
  if (registry_) out.metrics = registry_->snapshot();
  return out;
}

RunSummary DetectionEngine::streamSummary(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  // The summary is plain (non-atomic) state written by whichever worker
  // owns the stream; it is only stable once the pools have stopped.
  TIRESIAS_EXPECT(!started_.load(std::memory_order_acquire) ||
                      joined_.load(std::memory_order_acquire),
                  "streamSummary() while the pools are running — call it "
                  "after drain() or stop()");
  const auto& stream = *streams_[id];
  RunSummary sum = stream.summary;
  // Fold the ingest-side junk-row count in at read time (the worker never
  // sees the source, so the pipeline summary alone can't carry it).
  sum.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
  return sum;
}

}  // namespace tiresias::engine
