#include "engine/engine.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias::engine {

/// One registered stream: the pipeline plus everything it consumes.
struct DetectionEngine::StreamState {
  std::string name;
  std::unique_ptr<RecordSource> source;
  TiresiasPipeline pipeline;
  /// Cumulative counters; written only by the owning shard's worker
  /// (summary) and ingest (sourceSkipped), read after the pools stop.
  RunSummary summary;
  std::atomic<std::size_t> sourceSkipped{0};
  /// Ingest-side batcher state; nullopt until ingest begins.
  std::unique_ptr<TimeUnitBatcher> batcher;
  bool exhausted = false;

  StreamState(std::string streamName, const Hierarchy& hierarchy,
              PipelineConfig config, std::unique_ptr<RecordSource> src)
      : name(std::move(streamName)),
        source(std::move(src)),
        pipeline(hierarchy, std::move(config)) {}
};

struct DetectionEngine::ShardState {
  explicit ShardState(std::size_t queueCapacity) : queue(queueCapacity) {}

  struct WorkItem {
    StreamState* stream = nullptr;
    TimeUnitBatch batch;
  };

  std::vector<StreamState*> streams;
  BoundedQueue<WorkItem> queue;
  std::thread ingest;
  std::thread worker;

  // Live counters (stats() reads them while the pools run).
  std::atomic<std::size_t> unitsIngested{0};
  std::atomic<std::size_t> unitsProcessed{0};
  std::atomic<std::size_t> recordsProcessed{0};
  std::atomic<std::size_t> instancesDetected{0};
  std::atomic<std::size_t> anomaliesReported{0};
};

DetectionEngine::DetectionEngine(EngineConfig config, ResultSink sink)
    : config_(config), sink_(std::move(sink)) {
  TIRESIAS_EXPECT(config_.shards > 0, "engine needs at least one shard");
  TIRESIAS_EXPECT(config_.queueCapacity > 0,
                  "ingest queue capacity must be positive");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(config_.queueCapacity));
  }
}

DetectionEngine::~DetectionEngine() { stop(); }

std::size_t DetectionEngine::addStream(std::string name,
                                       const Hierarchy& hierarchy,
                                       PipelineConfig config,
                                       std::unique_ptr<RecordSource> source) {
  TIRESIAS_EXPECT(!started_, "addStream() after start()");
  TIRESIAS_EXPECT(source != nullptr, "stream needs a source");
  const std::size_t id = streams_.size();
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), hierarchy, std::move(config), std::move(source)));
  shards_[id % shards_.size()]->streams.push_back(streams_[id].get());
  return id;
}

const std::string& DetectionEngine::streamName(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  return streams_[id]->name;
}

void DetectionEngine::start() {
  TIRESIAS_EXPECT(!started_, "start() called twice");
  started_ = true;
  startTime_ = std::chrono::steady_clock::now();
  for (auto& shard : shards_) {
    shard->ingest = std::thread([this, s = shard.get()] { ingestLoop(*s); });
    shard->worker = std::thread([this, s = shard.get()] { workerLoop(*s); });
  }
}

void DetectionEngine::ingestLoop(ShardState& shard) {
  for (StreamState* stream : shard.streams) {
    stream->batcher = std::make_unique<TimeUnitBatcher>(
        *stream->source, stream->pipeline.config().delta,
        stream->pipeline.config().startTime);
  }
  // Round-robin one timeunit per stream per sweep, so no shard-mate can
  // monopolize the queue and every stream advances at a similar pace.
  std::size_t live = shard.streams.size();
  while (live > 0 && !stopRequested_.load(std::memory_order_relaxed)) {
    for (StreamState* stream : shard.streams) {
      if (stream->exhausted) continue;
      if (stopRequested_.load(std::memory_order_relaxed)) break;
      auto batch = stream->batcher->next();
      stream->sourceSkipped.store(stream->source->skippedRecords(),
                                  std::memory_order_relaxed);
      if (!batch) {
        stream->exhausted = true;
        --live;
        continue;
      }
      // Blocking push == backpressure: the generator stalls here when the
      // worker is behind, keeping queued memory bounded.
      if (!shard.queue.push({stream, std::move(*batch)})) return;
      shard.unitsIngested.fetch_add(1, std::memory_order_relaxed);
    }
  }
  shard.queue.close();
}

void DetectionEngine::workerLoop(ShardState& shard) {
  while (auto item = shard.queue.pop()) {
    StreamState& stream = *item->stream;
    RunSummary& sum = stream.summary;
    const std::size_t instancesBefore = sum.instancesDetected;
    const std::size_t anomaliesBefore = sum.anomaliesReported;
    const std::size_t batchRecords = item->batch.records.size();
    stream.pipeline.processUnit(
        std::move(item->batch),
        [&](const InstanceResult& r) {
          if (sink_) sink_(stream.name, r);
        },
        sum);
    shard.unitsProcessed.fetch_add(1, std::memory_order_relaxed);
    shard.recordsProcessed.fetch_add(batchRecords,
                                     std::memory_order_relaxed);
    shard.instancesDetected.fetch_add(sum.instancesDetected - instancesBefore,
                                      std::memory_order_relaxed);
    shard.anomaliesReported.fetch_add(sum.anomaliesReported - anomaliesBefore,
                                      std::memory_order_relaxed);
  }
}

EngineStats DetectionEngine::drain() {
  TIRESIAS_EXPECT(started_, "drain() before start()");
  if (!joined_) {
    // Ingest ends on its own once every source is exhausted; it closes the
    // queue, so the worker drains the backlog and ends too.
    for (auto& shard : shards_) {
      if (shard->ingest.joinable()) shard->ingest.join();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    finalElapsed_ = std::chrono::steady_clock::now() - startTime_;
    finished_.store(true);
    joined_ = true;
  }
  return stats();
}

void DetectionEngine::stop() {
  if (!started_ || joined_) return;
  stopRequested_.store(true);
  // Unblock producers stuck in push() and consumers stuck in pop().
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->ingest.joinable()) shard->ingest.join();
    if (shard->worker.joinable()) shard->worker.join();
  }
  finalElapsed_ = std::chrono::steady_clock::now() - startTime_;
  finished_.store(true);
  joined_ = true;
}

EngineStats DetectionEngine::stats() const {
  EngineStats out;
  out.streams = streams_.size();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.streams = shard->streams.size();
    s.unitsIngested = shard->unitsIngested.load(std::memory_order_relaxed);
    s.unitsProcessed = shard->unitsProcessed.load(std::memory_order_relaxed);
    s.recordsProcessed =
        shard->recordsProcessed.load(std::memory_order_relaxed);
    s.instancesDetected =
        shard->instancesDetected.load(std::memory_order_relaxed);
    s.anomaliesReported =
        shard->anomaliesReported.load(std::memory_order_relaxed);
    for (const StreamState* stream : shard->streams) {
      s.junkRowsSkipped +=
          stream->sourceSkipped.load(std::memory_order_relaxed);
    }
    s.queueDepth = shard->queue.depth();
    s.maxQueueDepth = shard->queue.maxDepth();
    s.backpressureWaits = shard->queue.blockedPushes();
    out.unitsProcessed += s.unitsProcessed;
    out.recordsProcessed += s.recordsProcessed;
    out.instancesDetected += s.instancesDetected;
    out.anomaliesReported += s.anomaliesReported;
    out.junkRowsSkipped += s.junkRowsSkipped;
    out.maxQueueDepth = std::max(out.maxQueueDepth, s.maxQueueDepth);
    out.backpressureWaits += s.backpressureWaits;
    out.shards.push_back(std::move(s));
  }
  const auto elapsed = finished_.load()
                           ? finalElapsed_
                           : std::chrono::steady_clock::now() - startTime_;
  out.elapsedSeconds =
      started_ ? std::chrono::duration<double>(elapsed).count() : 0.0;
  if (out.elapsedSeconds > 0.0) {
    out.recordsPerSecond =
        static_cast<double>(out.recordsProcessed) / out.elapsedSeconds;
  }
  return out;
}

RunSummary DetectionEngine::streamSummary(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  const auto& stream = *streams_[id];
  RunSummary sum = stream.summary;
  // Fold the ingest-side junk-row count in at read time (the worker never
  // sees the source, so the pipeline summary alone can't carry it).
  sum.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
  return sum;
}

}  // namespace tiresias::engine
