#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/expect.h"

namespace tiresias::engine {

namespace {

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One registered stream: the pipeline plus everything it consumes.
struct DetectionEngine::StreamState {
  std::string name;
  std::unique_ptr<RecordSource> source;
  TiresiasPipeline pipeline;
  /// Cumulative counters; written only by the owning shard's worker,
  /// read after the pools stop.
  RunSummary summary;
  std::atomic<std::size_t> sourceSkipped{0};
  std::atomic<std::size_t> warmupBuffered{0};
  /// Ingest-side batcher state; nullopt until ingest begins.
  std::unique_ptr<TimeUnitBatcher> batcher;
  bool exhausted = false;

  StreamState(std::string streamName, const Hierarchy& hierarchy,
              PipelineConfig config, std::unique_ptr<RecordSource> src)
      : name(std::move(streamName)),
        source(std::move(src)),
        pipeline(hierarchy, std::move(config)) {}
};

struct DetectionEngine::ShardState {
  explicit ShardState(std::size_t queueCapacity)
      : queue(queueCapacity), recycleCap(queueCapacity + 2) {}

  struct WorkItem {
    StreamState* stream = nullptr;
    TimeUnitBatch batch;
  };

  std::vector<StreamState*> streams;
  BoundedQueue<WorkItem> queue;
  std::thread ingest;
  std::thread worker;

  // Record buffers cycle ingest -> queue -> worker -> back to ingest, so
  // steady-state batching allocates nothing. Bounded: the pool never holds
  // more than what the queue can have in flight.
  std::mutex recycleMutex;
  std::vector<std::vector<Record>> recycle;
  const std::size_t recycleCap;

  std::vector<Record> takeRecycled() {
    std::lock_guard lock(recycleMutex);
    if (recycle.empty()) return {};
    std::vector<Record> buf = std::move(recycle.back());
    recycle.pop_back();
    return buf;
  }

  void recycleBuffer(std::vector<Record>&& buf) {
    buf.clear();
    std::lock_guard lock(recycleMutex);
    if (recycle.size() < recycleCap) recycle.push_back(std::move(buf));
  }

  // Live counters (stats() reads them while the pools run).
  std::atomic<std::size_t> unitsIngested{0};
  std::atomic<std::size_t> unitsProcessed{0};
  std::atomic<std::size_t> recordsProcessed{0};
  std::atomic<std::size_t> instancesDetected{0};
  std::atomic<std::size_t> anomaliesReported{0};
};

DetectionEngine::DetectionEngine(EngineConfig config, ResultSink sink)
    : config_(config), sink_(std::move(sink)) {
  TIRESIAS_EXPECT(config_.shards > 0, "engine needs at least one shard");
  TIRESIAS_EXPECT(config_.queueCapacity > 0,
                  "ingest queue capacity must be positive");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(config_.queueCapacity));
  }
}

DetectionEngine::~DetectionEngine() { stop(); }

std::size_t DetectionEngine::addStream(std::string name,
                                       const Hierarchy& hierarchy,
                                       PipelineConfig config,
                                       std::unique_ptr<RecordSource> source) {
  TIRESIAS_EXPECT(!started_.load(), "addStream() after start()");
  TIRESIAS_EXPECT(source != nullptr, "stream needs a source");
  const std::size_t id = streams_.size();
  streams_.push_back(std::make_unique<StreamState>(
      std::move(name), hierarchy, std::move(config), std::move(source)));
  shards_[id % shards_.size()]->streams.push_back(streams_[id].get());
  return id;
}

const std::string& DetectionEngine::streamName(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  return streams_[id]->name;
}

void DetectionEngine::start() {
  TIRESIAS_EXPECT(!started_.load(), "start() called twice");
  startNs_.store(nowNs(), std::memory_order_release);
  started_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->ingest = std::thread([this, s = shard.get()] { ingestLoop(*s); });
    shard->worker = std::thread([this, s = shard.get()] { workerLoop(*s); });
  }
}

void DetectionEngine::ingestLoop(ShardState& shard) {
  for (StreamState* stream : shard.streams) {
    stream->batcher = std::make_unique<TimeUnitBatcher>(
        *stream->source, stream->pipeline.config().delta,
        stream->pipeline.config().startTime);
  }
  // Round-robin one timeunit per stream per sweep, so no shard-mate can
  // monopolize the queue and every stream advances at a similar pace.
  std::size_t live = shard.streams.size();
  TimeUnitBatch batch;
  while (live > 0 && !stopRequested_.load(std::memory_order_relaxed)) {
    for (StreamState* stream : shard.streams) {
      if (stream->exhausted) continue;
      if (stopRequested_.load(std::memory_order_relaxed)) break;
      // Batch into a buffer recycled from the worker (allocation-free once
      // the pool is primed).
      batch.records = shard.takeRecycled();
      const bool more = stream->batcher->next(batch);
      stream->sourceSkipped.store(stream->source->skippedRecords(),
                                  std::memory_order_relaxed);
      if (!more) {
        stream->exhausted = true;
        --live;
        continue;
      }
      // Blocking push == backpressure: the generator stalls here when the
      // worker is behind, keeping queued memory bounded.
      if (!shard.queue.push({stream, std::move(batch)})) return;
      shard.unitsIngested.fetch_add(1, std::memory_order_relaxed);
    }
  }
  shard.queue.close();
}

void DetectionEngine::workerLoop(ShardState& shard) {
  while (auto item = shard.queue.pop()) {
    StreamState& stream = *item->stream;
    RunSummary& sum = stream.summary;
    const std::size_t instancesBefore = sum.instancesDetected;
    const std::size_t anomaliesBefore = sum.anomaliesReported;
    const std::size_t batchRecords = item->batch.records.size();
    stream.pipeline.processUnit(
        item->batch,
        [&](const InstanceResult& r) {
          if (sink_) sink_(stream.name, r);
        },
        sum);
    stream.warmupBuffered.store(sum.warmupUnitsBuffered,
                                std::memory_order_relaxed);
    shard.unitsProcessed.fetch_add(1, std::memory_order_relaxed);
    shard.recordsProcessed.fetch_add(batchRecords,
                                     std::memory_order_relaxed);
    shard.instancesDetected.fetch_add(sum.instancesDetected - instancesBefore,
                                      std::memory_order_relaxed);
    shard.anomaliesReported.fetch_add(sum.anomaliesReported - anomaliesBefore,
                                      std::memory_order_relaxed);
    shard.recycleBuffer(std::move(item->batch.records));
  }
}

EngineStats DetectionEngine::drain() {
  TIRESIAS_EXPECT(started_.load(), "drain() before start()");
  if (!joined_) {
    // Ingest ends on its own once every source is exhausted; it closes the
    // queue, so the worker drains the backlog and ends too.
    for (auto& shard : shards_) {
      if (shard->ingest.joinable()) shard->ingest.join();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    finalElapsedNs_.store(nowNs() - startNs_.load(std::memory_order_relaxed),
                          std::memory_order_release);
    joined_ = true;
  }
  return stats();
}

void DetectionEngine::stop() {
  if (!started_.load() || joined_) return;
  stopRequested_.store(true);
  // Unblock producers stuck in push() and consumers stuck in pop(),
  // dropping the queued backlog: stop() means "discard queued work", in
  // contrast to drain().
  for (auto& shard : shards_) {
    shard->queue.close(BoundedQueue<ShardState::WorkItem>::CloseMode::kDiscard);
  }
  for (auto& shard : shards_) {
    if (shard->ingest.joinable()) shard->ingest.join();
    if (shard->worker.joinable()) shard->worker.join();
  }
  finalElapsedNs_.store(nowNs() - startNs_.load(std::memory_order_relaxed),
                        std::memory_order_release);
  joined_ = true;
}

EngineStats DetectionEngine::stats() const {
  EngineStats out;
  out.streams = streams_.size();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.streams = shard->streams.size();
    s.unitsIngested = shard->unitsIngested.load(std::memory_order_relaxed);
    s.unitsProcessed = shard->unitsProcessed.load(std::memory_order_relaxed);
    s.unitsDiscarded = shard->queue.discardedItems();
    s.recordsProcessed =
        shard->recordsProcessed.load(std::memory_order_relaxed);
    s.instancesDetected =
        shard->instancesDetected.load(std::memory_order_relaxed);
    s.anomaliesReported =
        shard->anomaliesReported.load(std::memory_order_relaxed);
    for (const StreamState* stream : shard->streams) {
      s.junkRowsSkipped +=
          stream->sourceSkipped.load(std::memory_order_relaxed);
      s.warmupUnitsBuffered +=
          stream->warmupBuffered.load(std::memory_order_relaxed);
    }
    s.queueDepth = shard->queue.depth();
    s.maxQueueDepth = shard->queue.maxDepth();
    s.backpressureWaits = shard->queue.blockedPushes();
    out.unitsIngested += s.unitsIngested;
    out.unitsProcessed += s.unitsProcessed;
    out.unitsDiscarded += s.unitsDiscarded;
    out.recordsProcessed += s.recordsProcessed;
    out.instancesDetected += s.instancesDetected;
    out.anomaliesReported += s.anomaliesReported;
    out.junkRowsSkipped += s.junkRowsSkipped;
    out.warmupUnitsBuffered += s.warmupUnitsBuffered;
    out.maxQueueDepth = std::max(out.maxQueueDepth, s.maxQueueDepth);
    out.backpressureWaits += s.backpressureWaits;
    out.shards.push_back(std::move(s));
  }
  std::int64_t elapsedNs = 0;
  if (started_.load(std::memory_order_acquire)) {
    const std::int64_t fin = finalElapsedNs_.load(std::memory_order_acquire);
    elapsedNs =
        fin >= 0 ? fin : nowNs() - startNs_.load(std::memory_order_acquire);
  }
  out.elapsedSeconds = static_cast<double>(elapsedNs) / 1e9;
  if (out.elapsedSeconds > 0.0) {
    out.recordsPerSecond =
        static_cast<double>(out.recordsProcessed) / out.elapsedSeconds;
  }
  return out;
}

RunSummary DetectionEngine::streamSummary(std::size_t id) const {
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  const auto& stream = *streams_[id];
  RunSummary sum = stream.summary;
  // Fold the ingest-side junk-row count in at read time (the worker never
  // sees the source, so the pipeline summary alone can't carry it).
  sum.junkRowsSkipped = stream.sourceSkipped.load(std::memory_order_relaxed);
  return sum;
}

}  // namespace tiresias::engine
