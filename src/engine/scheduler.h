// Scheduler — the task-scheduled executor under DetectionEngine.
//
// Replaces the thread-pair-per-shard layout: instead of welding each
// stream to a shard's dedicated worker thread, every stream owns a FIFO
// queue of timeunits and a shared pool of M workers serves whichever
// streams currently have work. The scheduler keeps a *ready queue* of
// runnable stream ids (an engine::BoundedQueue in its MPMC role); a worker
// claims a ready stream, advances it by at most `runBudget` units, and —
// if backlog remains — requeues it at the tail, so one heavy stream can
// never monopolize a worker for longer than a budget slice and thin
// streams interleave with it fairly.
//
// Serialization invariant: a stream is owned by at most one worker at any
// time, and its units are processed strictly in submission order. The
// invariant is held by the per-stream state machine (idle -> ready ->
// running): submit() only enqueues a stream id when the stream is neither
// ready nor running, and the only transition out of running is performed
// by the owning worker. Together with the per-stream FIFO this makes an
// M-worker run bit-identical to the sequential baseline, whatever M is.
//
// Backpressure: producers are bounded per stream (`streamQueueCapacity`
// units, so a stalled pipeline can't buffer unbounded input) and globally
// (`totalQueueCapacity` units across all streams, so memory stays bounded
// no matter how many streams are registered). Producers poll canAccept()
// and park in waitForSpace() when nothing fits; workers wake them as units
// drain. The global bound is cooperative: with P producer threads it can
// overshoot by at most P-1 units.
//
// Shutdown: finishStream() marks end of a stream's input; once every
// stream has finished and drained, the ready queue closes and workers
// exit (drainAndJoin). stopAndJoin() is early shutdown: the ready queue
// closes in discard mode, parked producers are released (submit returns
// false), queued units are dropped and counted, workers are joined.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/bounded_queue.h"
#include "obs/metrics.h"
#include "stream/window.h"

namespace tiresias::engine {

struct SchedulerConfig {
  /// Worker pool size. Independent of the stream count.
  std::size_t workers = 1;
  /// Max units a worker advances one stream by before requeueing it
  /// (fairness/latency slice; larger = fewer scheduling round-trips).
  std::size_t runBudget = 8;
  /// Per-stream queue bound, in units.
  std::size_t streamQueueCapacity = 16;
  /// Global bound on queued units across all streams.
  std::size_t totalQueueCapacity = 1024;
  /// Optional metrics registry (not owned; must outlive the scheduler).
  /// When set, workers record dispatch-wait and run-slice latency spans
  /// and worker i binds metrics shard metricsShardBase + i.
  obs::MetricsRegistry* metrics = nullptr;
  std::size_t metricsShardBase = 1;
};

/// Snapshot of one stream's scheduling state.
struct StreamQueueStats {
  std::size_t queueDepth = 0;      // units currently queued
  std::size_t maxQueueDepth = 0;   // high-water mark
  std::size_t unitsEnqueued = 0;
  std::size_t unitsProcessed = 0;
  std::size_t unitsDiscarded = 0;  // dropped by stopAndJoin()
  std::size_t runs = 0;            // times a worker claimed this stream
  std::size_t requeues = 0;        // claims that ended with backlog left
};

/// Snapshot of the executor as a whole.
struct SchedulerStats {
  std::size_t workers = 0;
  std::size_t readyStreams = 0;     // current ready-queue depth
  std::size_t maxReadyStreams = 0;  // high-water mark
  std::size_t claims = 0;           // stream pops by workers ("steals"
                                    // from the shared pool)
  std::size_t requeues = 0;         // claims ending with backlog left
  std::size_t queuedUnits = 0;      // units queued across all streams
  std::size_t maxQueuedUnits = 0;   // high-water mark
  std::size_t backpressureWaits = 0;  // producer parks in waitForSpace()
};

class Scheduler {
 public:
  /// Worker-side unit processor. Called with per-stream serialization
  /// (at most one call per stream in flight, units in submission order);
  /// calls for *different* streams run concurrently. `workerIndex` is the
  /// dense index of the calling worker (stable for the whole call), so the
  /// callee can address per-worker pooled resources — the engine lends its
  /// per-worker detection workspace to the stream being advanced. The
  /// batch is mutable so the callee can salvage its record buffer.
  using ProcessFn = std::function<void(std::size_t workerIndex,
                                       std::size_t streamId,
                                       TimeUnitBatch& batch)>;

  Scheduler(SchedulerConfig config, ProcessFn process);
  /// Joins outstanding workers (via stopAndJoin).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a stream before start(). Returns the dense stream id.
  std::size_t addStream();

  /// Launch the worker pool. Call once, after all addStream().
  void start();

  /// True when stream `id` can take one more unit within both bounds.
  /// Advisory — the producer should skip the stream (or park in
  /// waitForSpace()) when false.
  bool canAccept(std::size_t id) const;

  /// Enqueue the next unit of stream `id` in source order and mark the
  /// stream ready if it was idle. Never blocks. Returns false iff the
  /// scheduler is stopping (the unit is dropped, uncounted). Each stream
  /// must have a single producer thread.
  bool submit(std::size_t id, TimeUnitBatch&& batch);

  /// Park until queued units drained (so canAccept may hold again) or the
  /// scheduler stops. Returns false iff stopping. Counts one
  /// backpressure wait.
  bool waitForSpace();

  /// Declare end of input for stream `id` (no submit() after this).
  void finishStream(std::size_t id);

  /// Block until every queued unit has been processed and no worker is
  /// mid-stream (a unit boundary across all streams) — the quiescent point
  /// a checkpoint snapshots at. Callers must stop producers first or the
  /// wait may never end; returns immediately when the scheduler is not
  /// started or is stopping. Workers stay parked on the ready queue, so
  /// processing resumes by itself when producers submit again.
  void quiesce();

  /// Wait until every finished stream has drained, then join the workers.
  /// Requires finishStream() to have been called for every stream
  /// (otherwise the pool would wait forever).
  void drainAndJoin();

  /// Early shutdown: release parked producers, drop all queued units
  /// (counted in unitsDiscarded), join the workers. Idempotent; safe
  /// after drainAndJoin().
  void stopAndJoin();

  std::size_t streamCount() const { return streams_.size(); }

  /// Thread-safe snapshots, pollable while the pool runs.
  SchedulerStats stats() const;
  StreamQueueStats streamStats(std::size_t id) const;
  /// Every stream's stats under a single lock acquisition — what stats
  /// pollers should use (per-stream streamStats() calls in a loop would
  /// take the scheduler lock once per stream against the hot path).
  std::vector<StreamQueueStats> allStreamStats() const;

 private:
  /// Per-stream scheduling state. The state machine lives under mu_:
  /// `ready` == the id is in the ready queue; `running` == owned by a
  /// worker; never both.
  struct StreamEntry {
    std::deque<TimeUnitBatch> queue;
    bool ready = false;
    bool running = false;
    bool inputDone = false;  // finishStream() called
    bool retired = false;    // drained after inputDone (counted once)
    StreamQueueStats stats;
  };

  void workerLoop(std::size_t workerIndex);
  /// Advance one claimed stream by up to runBudget units.
  void runStream(std::size_t workerIndex, std::size_t id);
  /// Mark `stream` retired if fully drained; close the ready queue when
  /// the last stream retires. Call with mu_ held; returns true when this
  /// call retired the last stream.
  bool retireIfDrained(StreamEntry& stream);

  SchedulerConfig config_;
  ProcessFn process_;

  mutable std::mutex mu_;
  std::condition_variable spaceCv_;  // producers park here
  std::vector<std::unique_ptr<StreamEntry>> streams_;
  std::size_t liveStreams_ = 0;   // not yet retired
  std::size_t queuedUnits_ = 0;   // across all streams
  std::size_t maxQueuedUnits_ = 0;
  std::size_t claims_ = 0;
  std::size_t requeues_ = 0;
  std::size_t backpressureWaits_ = 0;
  /// Bumped once per consumed unit; waitForSpace() parks until it moves.
  std::size_t consumeTick_ = 0;
  bool started_ = false;
  bool stopRequested_ = false;

  /// Ready queue of runnable stream ids; capacity == streamCount() so a
  /// push can never block (each stream appears at most once). Built in
  /// start(). This is BoundedQueue in its MPMC role: producers and
  /// workers both push (initial schedule / requeue), workers pop.
  std::unique_ptr<BoundedQueue<std::size_t>> ready_;
  std::vector<std::thread> workers_;
};

}  // namespace tiresias::engine
