#include "engine/scheduler.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias::engine {

Scheduler::Scheduler(SchedulerConfig config, ProcessFn process)
    : config_(config), process_(std::move(process)) {
  TIRESIAS_EXPECT(config_.workers > 0, "scheduler needs at least one worker");
  TIRESIAS_EXPECT(config_.runBudget > 0, "run budget must be positive");
  TIRESIAS_EXPECT(config_.streamQueueCapacity > 0,
                  "per-stream queue capacity must be positive");
  TIRESIAS_EXPECT(config_.totalQueueCapacity > 0,
                  "total queue capacity must be positive");
  TIRESIAS_EXPECT(process_ != nullptr, "scheduler needs a process function");
}

Scheduler::~Scheduler() { stopAndJoin(); }

std::size_t Scheduler::addStream() {
  std::lock_guard lock(mu_);
  TIRESIAS_EXPECT(!started_, "addStream() after start()");
  streams_.push_back(std::make_unique<StreamEntry>());
  return streams_.size() - 1;
}

void Scheduler::start() {
  {
    std::lock_guard lock(mu_);
    TIRESIAS_EXPECT(!started_, "start() called twice");
    started_ = true;
    liveStreams_ = streams_.size();
    ready_ = std::make_unique<BoundedQueue<std::size_t>>(
        std::max<std::size_t>(1, streams_.size()));
  }
  if (streams_.empty()) ready_->close();
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

bool Scheduler::canAccept(std::size_t id) const {
  std::lock_guard lock(mu_);
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  const StreamEntry& s = *streams_[id];
  return !stopRequested_ && s.queue.size() < config_.streamQueueCapacity &&
         queuedUnits_ < config_.totalQueueCapacity;
}

bool Scheduler::submit(std::size_t id, TimeUnitBatch&& batch) {
  bool schedule = false;
  {
    std::lock_guard lock(mu_);
    TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
    TIRESIAS_EXPECT(started_, "submit() before start()");
    if (stopRequested_) return false;
    StreamEntry& s = *streams_[id];
    TIRESIAS_EXPECT(!s.inputDone, "submit() after finishStream()");
    s.queue.push_back(std::move(batch));
    ++s.stats.unitsEnqueued;
    s.stats.maxQueueDepth = std::max(s.stats.maxQueueDepth, s.queue.size());
    ++queuedUnits_;
    maxQueuedUnits_ = std::max(maxQueuedUnits_, queuedUnits_);
    if (!s.ready && !s.running) {
      s.ready = true;
      schedule = true;
    }
  }
  if (schedule) {
    // Never kFull: each stream id is in the ready queue at most once and
    // its capacity is streamCount(). kClosed can only mean shutdown, in
    // which case the backlog is discarded by stopAndJoin() anyway.
    const auto r = ready_->tryPush(id);
    TIRESIAS_EXPECT(r != BoundedQueue<std::size_t>::PushResult::kFull,
                    "ready queue can never fill");
  }
  return true;
}

bool Scheduler::waitForSpace() {
  std::unique_lock lock(mu_);
  if (stopRequested_) return false;
  // The caller observed "no space" before locking; if workers drained
  // everything in that window, no further tick will ever come (idle
  // workers park in ready_->pop()) — space is certainly available now,
  // so return for a re-sweep instead of parking on a stale snapshot.
  if (queuedUnits_ == 0) return true;
  // Otherwise some stream queue is non-empty, hence ready or running by
  // the scheduling invariant, so a worker is bound to consume a unit and
  // bump the tick.
  ++backpressureWaits_;
  const std::size_t tick = consumeTick_;
  spaceCv_.wait(lock,
                [&] { return stopRequested_ || consumeTick_ != tick; });
  return !stopRequested_;
}

void Scheduler::finishStream(std::size_t id) {
  bool closeReady = false;
  {
    std::lock_guard lock(mu_);
    TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
    StreamEntry& s = *streams_[id];
    if (s.inputDone) return;
    s.inputDone = true;
    closeReady = retireIfDrained(s);
  }
  if (closeReady) ready_->close();
}

bool Scheduler::retireIfDrained(StreamEntry& stream) {
  if (stream.retired || !stream.inputDone || !stream.queue.empty() ||
      stream.ready || stream.running) {
    return false;
  }
  stream.retired = true;
  return --liveStreams_ == 0;
}

void Scheduler::workerLoop(std::size_t workerIndex) {
  obs::bindThreadShard(config_.metricsShardBase + workerIndex);
  for (;;) {
    std::optional<std::size_t> id;
    {
      // Dispatch wait is worker idle time: blocked on the ready queue
      // because no stream is runnable (all drained, or producers stalled).
      obs::StageSpan wait(config_.metrics, obs::Stage::kDispatchWait);
      id = ready_->pop();
    }
    if (!id) break;
    runStream(workerIndex, *id);
  }
}

void Scheduler::runStream(std::size_t workerIndex, std::size_t id) {
  obs::StageSpan slice(config_.metrics, obs::Stage::kRunSlice);
  StreamEntry& s = *streams_[id];
  {
    std::lock_guard lock(mu_);
    s.ready = false;
    s.running = true;
    ++claims_;
    ++s.stats.runs;
  }
  TimeUnitBatch batch;
  for (std::size_t n = 0; n < config_.runBudget; ++n) {
    {
      std::lock_guard lock(mu_);
      if (stopRequested_ || s.queue.empty()) break;
      batch = std::move(s.queue.front());
      s.queue.pop_front();
    }
    process_(workerIndex, id, batch);
    {
      std::lock_guard lock(mu_);
      ++s.stats.unitsProcessed;
      --queuedUnits_;
      ++consumeTick_;
    }
    // Notify after dropping mu_ so woken producers don't immediately
    // block on the mutex the notifier still holds.
    spaceCv_.notify_all();
  }
  bool reschedule = false;
  bool closeReady = false;
  {
    std::lock_guard lock(mu_);
    s.running = false;
    if (stopRequested_) {
      // Early shutdown: leave the backlog for stopAndJoin() to discard.
    } else if (!s.queue.empty()) {
      s.ready = true;
      ++requeues_;
      ++s.stats.requeues;
      reschedule = true;
    } else {
      closeReady = retireIfDrained(s);
    }
  }
  if (reschedule) {
    const auto r = ready_->tryPush(id);
    TIRESIAS_EXPECT(r != BoundedQueue<std::size_t>::PushResult::kFull,
                    "ready queue can never fill");
  }
  if (closeReady) ready_->close();
  // The running -> idle transition is what quiesce() waits on; the
  // per-unit notifies above only fire when a unit was consumed.
  spaceCv_.notify_all();
}

void Scheduler::quiesce() {
  std::unique_lock lock(mu_);
  if (!started_) return;
  spaceCv_.wait(lock, [&] {
    // Streams mid-run must always finish their in-flight unit (even under
    // early shutdown, so a concurrent snapshot never races a worker); the
    // queued-empty requirement is waived when stopping because stopAndJoin
    // discards the backlog rather than processing it.
    if (queuedUnits_ != 0 && !stopRequested_) return false;
    for (const auto& s : streams_) {
      if (s->running) return false;
    }
    return true;
  });
}

void Scheduler::drainAndJoin() {
  {
    std::lock_guard lock(mu_);
    TIRESIAS_EXPECT(started_, "drainAndJoin() before start()");
    for (const auto& s : streams_) {
      TIRESIAS_EXPECT(s->inputDone,
                      "drainAndJoin() with a stream still producing — call "
                      "finishStream() for every stream first");
    }
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void Scheduler::stopAndJoin() {
  {
    std::lock_guard lock(mu_);
    stopRequested_ = true;
    // Discard (and count) the backlog immediately, not after the join: a
    // worker can be wedged arbitrarily long in a user sink, and stats
    // pollers must be able to observe the discard while stop() is still
    // joining (the engine's stop test synchronizes on exactly that).
    // Safe concurrently with a running worker: after stopRequested_ no
    // worker touches its stream's queue again, and the in-flight unit was
    // already popped.
    for (auto& sp : streams_) {
      StreamEntry& s = *sp;
      s.stats.unitsDiscarded += s.queue.size();
      queuedUnits_ -= s.queue.size();
      s.queue.clear();
    }
    spaceCv_.notify_all();
  }
  if (ready_) ready_->close(BoundedQueue<std::size_t>::CloseMode::kDiscard);
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard lock(mu_);
  SchedulerStats out;
  out.workers = config_.workers;
  out.claims = claims_;
  out.requeues = requeues_;
  out.queuedUnits = queuedUnits_;
  out.maxQueuedUnits = maxQueuedUnits_;
  out.backpressureWaits = backpressureWaits_;
  if (ready_) {
    out.readyStreams = ready_->depth();
    out.maxReadyStreams = ready_->maxDepth();
  }
  return out;
}

StreamQueueStats Scheduler::streamStats(std::size_t id) const {
  std::lock_guard lock(mu_);
  TIRESIAS_EXPECT(id < streams_.size(), "stream id out of range");
  StreamQueueStats out = streams_[id]->stats;
  out.queueDepth = streams_[id]->queue.size();
  return out;
}

std::vector<StreamQueueStats> Scheduler::allStreamStats() const {
  std::lock_guard lock(mu_);
  std::vector<StreamQueueStats> out;
  out.reserve(streams_.size());
  for (const auto& sp : streams_) {
    out.push_back(sp->stats);
    out.back().queueDepth = sp->queue.size();
  }
  return out;
}

}  // namespace tiresias::engine
