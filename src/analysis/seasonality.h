// Automatic seasonality selection (Step 3, Fig 3(d)).
//
// Combines the FFT periodogram with the à-trous detail-energy spectrum to
// pick seasonal periods for the Holt-Winters model, mirroring the paper:
// a candidate period is accepted when it is a strong FFT peak AND the
// wavelet detail energy at the matching dyadic timescale is locally
// elevated. The combination weight for two seasons follows the paper's
// ξ = FFT(period₁) / FFT(period₂) rule (ξ = 0.76 for CCD's day/week pair).
//
// The paper runs this offline on the first window ("the periodicities of
// operational datasets we had are fairly stable across time"); the pipeline
// does the same.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/holt_winters.h"

namespace tiresias {

struct SeasonalityOptions {
  /// Candidate periods to test, in samples (e.g. {96, 672} for day/week at
  /// 15-minute units). Empty means "take the strongest FFT peaks".
  std::vector<std::size_t> candidatePeriods;
  /// Max number of seasons to select.
  std::size_t maxSeasons = 2;
  /// A candidate is significant if its FFT magnitude is at least this
  /// fraction of the strongest line's magnitude.
  double significanceRatio = 0.05;
  /// Wavelet levels to compute for the cross-check (0 = skip cross-check).
  std::size_t waveletLevels = 10;
};

struct SeasonalityResult {
  /// Selected seasons with combination weights (sums to 1), strongest first.
  std::vector<SeasonSpec> seasons;
  /// FFT magnitude of each selected season (same order).
  std::vector<double> magnitudes;
  /// Detail energy per wavelet level (diagnostic; empty if skipped).
  std::vector<double> waveletEnergies;
};

/// Analyze one representative series (usually the root node's counts).
SeasonalityResult analyzeSeasonality(const std::vector<double>& series,
                                     const SeasonalityOptions& options = {});

}  // namespace tiresias
