// Fast Fourier Transform and periodogram (Step 3, Fig 11).
//
// Iterative radix-2 Cooley-Tukey over std::complex<double>. Real input is
// zero-padded (after mean removal and optional Hann windowing) to the next
// power of two; the periodogram reports magnitude per period so benches can
// print the paper's "FFT magnitude vs period in hours" series directly.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace tiresias {

/// In-place radix-2 FFT. Size must be a power of two. `inverse` applies the
/// conjugate transform and 1/n normalization.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Smallest power of two >= n (n >= 1).
std::size_t nextPow2(std::size_t n);

/// One spectral line: frequency in cycles-per-sample and its magnitude.
struct SpectralLine {
  double frequency;  // cycles per sample, in (0, 0.5]
  double magnitude;  // |X(f)|, arbitrary units
  double period;     // 1/frequency, in samples
};

struct PeriodogramOptions {
  bool removeMean = true;
  bool hannWindow = true;
};

/// Magnitude spectrum of a real series (positive frequencies only,
/// DC excluded). Lines come back ordered by ascending frequency.
std::vector<SpectralLine> periodogram(const std::vector<double>& series,
                                      const PeriodogramOptions& options = {});

/// The `count` strongest spectral lines, strongest first, with a simple
/// local-maximum requirement so one wide peak doesn't claim every slot.
std::vector<SpectralLine> dominantPeriods(const std::vector<double>& series,
                                          std::size_t count,
                                          const PeriodogramOptions& options = {});

/// Magnitude at the spectral line nearest the given period (in samples).
/// Used for the paper's ξ = FFT_day / FFT_week seasonal weight.
double magnitudeNearPeriod(const std::vector<SpectralLine>& spectrum,
                           double periodSamples);

}  // namespace tiresias
