#include "analysis/seasonality.h"

#include <algorithm>
#include <cmath>

#include "analysis/fft.h"
#include "analysis/wavelet.h"
#include "common/expect.h"

namespace tiresias {
namespace {

/// Largest wavelet level whose timescale (~2^(level+1) samples) does not
/// exceed the series length.
std::size_t usableWaveletLevels(std::size_t seriesLen, std::size_t requested) {
  std::size_t levels = 0;
  std::size_t scale = 2;
  while (levels < requested && scale * 4 < seriesLen) {
    ++levels;
    scale <<= 1;
  }
  return std::max<std::size_t>(levels, 1);
}

}  // namespace

SeasonalityResult analyzeSeasonality(const std::vector<double>& series,
                                     const SeasonalityOptions& options) {
  TIRESIAS_EXPECT(series.size() >= 16, "series too short for seasonality");
  SeasonalityResult result;

  const auto spectrum = periodogram(series);
  double peak = 0.0;
  for (const auto& line : spectrum) peak = std::max(peak, line.magnitude);
  TIRESIAS_EXPECT(peak > 0.0, "degenerate spectrum");

  // Candidate periods: caller-provided, else the strongest distinct peaks.
  std::vector<std::size_t> candidates = options.candidatePeriods;
  if (candidates.empty()) {
    for (const auto& line : dominantPeriods(series, options.maxSeasons * 3)) {
      const auto period = static_cast<std::size_t>(std::lround(line.period));
      if (period < 2 || period * 2 > series.size()) continue;
      // Skip near-duplicates (within 20%).
      bool dup = false;
      for (std::size_t p : candidates) {
        const double ratio =
            static_cast<double>(period) / static_cast<double>(p);
        if (ratio > 0.8 && ratio < 1.25) dup = true;
      }
      if (!dup) candidates.push_back(period);
    }
  }

  // Wavelet cross-check (diagnostic + veto of spurious FFT peaks).
  std::vector<double> energies;
  if (options.waveletLevels > 0) {
    const std::size_t levels =
        usableWaveletLevels(series.size(), options.waveletLevels);
    energies = detailEnergies(atrousTransform(series, levels));
    result.waveletEnergies = energies;
  }

  struct Scored {
    std::size_t period;
    double magnitude;
  };
  std::vector<Scored> accepted;
  for (std::size_t period : candidates) {
    if (period < 2 || period * 2 > series.size()) continue;
    const double magnitude = magnitudeNearPeriod(spectrum,
                                                 static_cast<double>(period));
    if (magnitude < options.significanceRatio * peak) continue;
    if (!energies.empty()) {
      // The detail level covering this period must carry a non-trivial
      // share of the total fluctuation energy.
      const auto level = static_cast<std::size_t>(
          std::clamp(std::log2(static_cast<double>(period)) - 1.0, 0.0,
                     static_cast<double>(energies.size() - 1)));
      double total = 0.0;
      for (double e : energies) total += e;
      if (total > 0.0 && energies[level] < 0.005 * total) continue;
    }
    accepted.push_back({period, magnitude});
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Scored& a, const Scored& b) {
              return a.magnitude > b.magnitude;
            });
  if (accepted.size() > options.maxSeasons) {
    accepted.resize(options.maxSeasons);
  }

  // Paper's weight rule generalized: weight_i ∝ FFT magnitude of season i.
  double total = 0.0;
  for (const auto& s : accepted) total += s.magnitude;
  for (const auto& s : accepted) {
    result.seasons.push_back({s.period, s.magnitude / total});
    result.magnitudes.push_back(s.magnitude);
  }
  return result;
}

}  // namespace tiresias
