#include "analysis/wavelet.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/expect.h"

namespace tiresias {
namespace {

constexpr double kB3[5] = {1.0 / 16, 1.0 / 4, 3.0 / 8, 1.0 / 4, 1.0 / 16};

/// Mirror (symmetric, non-repeating edge) index into [0, n).
std::size_t mirror(long long i, std::size_t n) {
  const long long m = static_cast<long long>(n);
  if (m == 1) return 0;
  const long long period = 2 * (m - 1);
  long long r = i % period;
  if (r < 0) r += period;
  if (r >= m) r = period - r;
  return static_cast<std::size_t>(r);
}

std::vector<double> smoothOnce(const std::vector<double>& in,
                               std::size_t dilation) {
  const std::size_t n = in.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double acc = 0.0;
    for (int k = -2; k <= 2; ++k) {
      const long long idx =
          static_cast<long long>(t) + k * static_cast<long long>(dilation);
      acc += kB3[k + 2] * in[mirror(idx, n)];
    }
    out[t] = acc;
  }
  return out;
}

}  // namespace

AtrousDecomposition atrousTransform(const std::vector<double>& series,
                                    std::size_t levels) {
  TIRESIAS_EXPECT(levels >= 1, "need at least one level");
  TIRESIAS_EXPECT(series.size() >= 8, "series too short for wavelet analysis");
  AtrousDecomposition out;
  out.smooth.reserve(levels);
  out.detail.reserve(levels);

  const std::vector<double>* prev = &series;
  std::size_t dilation = 1;
  for (std::size_t j = 0; j < levels; ++j) {
    std::vector<double> smoothed = smoothOnce(*prev, dilation);
    std::vector<double> detail(series.size());
    for (std::size_t t = 0; t < series.size(); ++t) {
      detail[t] = (*prev)[t] - smoothed[t];
    }
    out.smooth.push_back(std::move(smoothed));
    out.detail.push_back(std::move(detail));
    prev = &out.smooth.back();
    dilation <<= 1;
  }
  return out;
}

std::vector<double> detailEnergies(const AtrousDecomposition& decomposition) {
  std::vector<double> energies;
  energies.reserve(decomposition.detail.size());
  for (const auto& d : decomposition.detail) {
    double e = 0.0;
    for (double v : d) e += v * v;
    energies.push_back(e);
  }
  return energies;
}

double reconstructionError(const std::vector<double>& series,
                           const AtrousDecomposition& decomposition) {
  TIRESIAS_EXPECT(!decomposition.smooth.empty(), "empty decomposition");
  double worst = 0.0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    double rebuilt = decomposition.smooth.back()[t];
    for (const auto& d : decomposition.detail) rebuilt += d[t];
    worst = std::max(worst, std::abs(series[t] - rebuilt));
  }
  return worst;
}

}  // namespace tiresias
