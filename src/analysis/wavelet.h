// À-trous (stationary) wavelet transform with the B3-spline low-pass filter
// (1/16, 1/4, 3/8, 1/4, 1/16) — the paper's §VI seasonality cross-check
// (Shensa [13], as applied by Papagiannaki et al. [16]).
//
// Level j smooths with the filter dilated by 2^(j-1) (holes between taps);
// the detail at level j is d_j(t) = c_{j-1}(t) − c_j(t) and its energy
// indicates fluctuation strength at timescale ~2^j samples.
#pragma once

#include <cstddef>
#include <vector>

namespace tiresias {

struct AtrousDecomposition {
  /// smooth[j] = c_{j+1}, j = 0..levels-1 (c_0 is the input itself).
  std::vector<std::vector<double>> smooth;
  /// detail[j] = c_j − c_{j+1} at the same indexing.
  std::vector<std::vector<double>> detail;
};

/// Decompose `series` into `levels` dyadic scales. Boundaries use symmetric
/// (mirror) extension to avoid phase artifacts. Requires levels >= 1 and a
/// series long enough for the largest dilation (2^(levels-1)·4 < size).
AtrousDecomposition atrousTransform(const std::vector<double>& series,
                                    std::size_t levels);

/// Energy (sum of squares) of each detail level, index 0 = finest scale
/// (~2 samples). The paper plots these to confirm the FFT's periodicities.
std::vector<double> detailEnergies(const AtrousDecomposition& decomposition);

/// Reconstruction check: input == smooth.back() + Σ details (exact up to
/// floating point). Returns the maximum absolute reconstruction error.
double reconstructionError(const std::vector<double>& series,
                           const AtrousDecomposition& decomposition);

}  // namespace tiresias
