#include "analysis/fft.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expect.h"

namespace tiresias {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  TIRESIAS_EXPECT(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::size_t nextPow2(std::size_t n) {
  TIRESIAS_EXPECT(n >= 1, "nextPow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<SpectralLine> periodogram(const std::vector<double>& series,
                                      const PeriodogramOptions& options) {
  TIRESIAS_EXPECT(series.size() >= 4, "series too short for a periodogram");
  const std::size_t n = series.size();
  double m = 0.0;
  if (options.removeMean) {
    for (double v : series) m += v;
    m /= static_cast<double>(n);
  }

  const std::size_t padded = nextPow2(n);
  std::vector<std::complex<double>> buf(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    double v = series[i] - m;
    if (options.hannWindow) {
      v *= 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                 static_cast<double>(i) /
                                 static_cast<double>(n - 1)));
    }
    buf[i] = {v, 0.0};
  }
  fft(buf);

  std::vector<SpectralLine> lines;
  lines.reserve(padded / 2);
  for (std::size_t k = 1; k <= padded / 2; ++k) {
    const double freq = static_cast<double>(k) / static_cast<double>(padded);
    lines.push_back({freq, std::abs(buf[k]), 1.0 / freq});
  }
  return lines;
}

std::vector<SpectralLine> dominantPeriods(const std::vector<double>& series,
                                          std::size_t count,
                                          const PeriodogramOptions& options) {
  const auto spec = periodogram(series, options);
  std::vector<std::size_t> maxima;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const double left = i > 0 ? spec[i - 1].magnitude : 0.0;
    const double right = i + 1 < spec.size() ? spec[i + 1].magnitude : 0.0;
    if (spec[i].magnitude >= left && spec[i].magnitude >= right) {
      maxima.push_back(i);
    }
  }
  std::sort(maxima.begin(), maxima.end(), [&](std::size_t a, std::size_t b) {
    return spec[a].magnitude > spec[b].magnitude;
  });
  std::vector<SpectralLine> out;
  for (std::size_t i = 0; i < maxima.size() && out.size() < count; ++i) {
    out.push_back(spec[maxima[i]]);
  }
  return out;
}

double magnitudeNearPeriod(const std::vector<SpectralLine>& spectrum,
                           double periodSamples) {
  TIRESIAS_EXPECT(!spectrum.empty(), "empty spectrum");
  double best = spectrum.front().magnitude;
  double bestDist = std::abs(std::log(spectrum.front().period) -
                             std::log(periodSamples));
  for (const auto& line : spectrum) {
    const double dist =
        std::abs(std::log(line.period) - std::log(periodSamples));
    if (dist < bestDist) {
      bestDist = dist;
      best = line.magnitude;
    }
  }
  return best;
}

}  // namespace tiresias
