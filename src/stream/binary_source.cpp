#include "stream/binary_source.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "common/expect.h"
#include "persist/snapshot.h"

namespace tiresias {

namespace {

using persist::Deserializer;
using persist::Serializer;
using persist::SnapshotError;

constexpr std::size_t kRecordBytes = 12;  // u32 fileId + i64 timestamp
constexpr std::size_t kPrologueBytes = 24;
/// Converter block size: large enough that the u32 count prefix is noise,
/// small enough that the reader's block buffer stays cache-friendly.
constexpr std::size_t kConvertBlockRecords = 8192;

// Byte-assembly little-endian codecs: GCC folds these to single moves on
// LE targets, and they are alignment- and endianness-correct everywhere.
std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(le32(p)) |
         (static_cast<std::uint64_t>(le32(p + 4)) << 32);
}

void putLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void putLe64(std::uint8_t* p, std::uint64_t v) {
  putLe32(p, static_cast<std::uint32_t>(v));
  putLe32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

struct BinarySource::Impl {
  std::ifstream in;
  std::uint64_t recordCount = 0;   // declared by the prologue
  std::uint64_t decodedTotal = 0;  // records decoded so far (incl. skipped)
  /// fileId → NodeId against the reader's hierarchy (kInvalidNode when the
  /// path did not resolve — those records are skipped, not errors).
  std::vector<NodeId> fileIdToNode;
  std::size_t unresolved = 0;

  /// Current block, raw record bytes. `blockPos` counts records consumed.
  std::vector<std::uint8_t> block;
  std::size_t blockRecords = 0;
  std::size_t blockPos = 0;

  Impl(const std::string& path, const Hierarchy& hierarchy) : in(path) {
    if (!in) throw SnapshotError("binary trace: cannot open file");
    in.seekg(0, std::ios::end);
    const auto endPos = in.tellg();
    if (endPos < 0) throw SnapshotError("binary trace: cannot stat file");
    const std::uint64_t fileBytes = static_cast<std::uint64_t>(endPos);
    in.seekg(0, std::ios::beg);

    std::uint8_t prologue[kPrologueBytes];
    if (!readExact(prologue, kPrologueBytes)) {
      throw SnapshotError("binary trace: truncated prologue");
    }
    if (le32(prologue) != kBinaryTraceMagic) {
      throw SnapshotError("binary trace: bad magic");
    }
    if (le32(prologue + 4) != kBinaryTraceVersion) {
      throw SnapshotError("binary trace: unknown format version");
    }
    recordCount = le64(prologue + 8);
    const std::uint64_t tableBytes = le64(prologue + 16);
    // The table must be backed by real bytes before any allocation sized
    // from it — a corrupted length must not drive an OOM.
    if (tableBytes > fileBytes - kPrologueBytes) {
      throw SnapshotError("binary trace: path table overruns file");
    }
    std::vector<std::uint8_t> table(static_cast<std::size_t>(tableBytes));
    if (!readExact(table.data(), table.size())) {
      throw SnapshotError("binary trace: truncated path table");
    }
    Deserializer des(table);
    const std::size_t paths = des.count(sizeof(std::uint64_t));
    fileIdToNode.reserve(paths);
    for (std::size_t i = 0; i < paths; ++i) {
      const NodeId node = hierarchy.find(des.str());
      if (node == kInvalidNode) ++unresolved;
      fileIdToNode.push_back(node);
    }
    Deserializer::require(des.atEnd(),
                          "binary trace: trailing bytes in path table");
  }

  bool readExact(std::uint8_t* dst, std::size_t n) {
    in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(in.gcount()) == n;
  }

  /// Load the next record block. False at a clean end of file; throws on
  /// truncation, an implausible count, or a count overrunning the total
  /// declared by the prologue.
  bool loadBlock() {
    std::uint8_t prefix[4];
    in.read(reinterpret_cast<char*>(prefix), 4);
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) {
      if (decodedTotal != recordCount) {
        throw SnapshotError("binary trace: truncated (missing records)");
      }
      return false;
    }
    if (got != 4) throw SnapshotError("binary trace: truncated block header");
    const std::uint32_t count = le32(prefix);
    if (count == 0 || count > kBinaryTraceMaxBlockRecords) {
      throw SnapshotError("binary trace: implausible block record count");
    }
    if (decodedTotal + count > recordCount) {
      throw SnapshotError("binary trace: more records than declared");
    }
    block.resize(static_cast<std::size_t>(count) * kRecordBytes);
    if (!readExact(block.data(), block.size())) {
      throw SnapshotError("binary trace: truncated record block");
    }
    blockRecords = count;
    blockPos = 0;
    return true;
  }
};

BinarySource::BinarySource(std::string path, const Hierarchy& hierarchy)
    : impl_(std::make_unique<Impl>(path, hierarchy)) {}

BinarySource::~BinarySource() = default;

std::size_t BinarySource::unresolvedPaths() const {
  return impl_->unresolved;
}

std::optional<Record> BinarySource::next() {
  Impl& im = *impl_;
  for (;;) {
    if (im.blockPos >= im.blockRecords && !im.loadBlock()) {
      return std::nullopt;
    }
    const std::uint8_t* rec = im.block.data() + im.blockPos * kRecordBytes;
    ++im.blockPos;
    ++im.decodedTotal;
    const std::uint32_t fileId = le32(rec);
    if (fileId >= im.fileIdToNode.size()) {
      throw SnapshotError("binary trace: file id outside path table");
    }
    const NodeId node = im.fileIdToNode[fileId];
    if (node == kInvalidNode) {
      ++skipped_;
      continue;
    }
    return Record{node, static_cast<Timestamp>(le64(rec + 4))};
  }
}

std::size_t BinarySource::nextBatch(std::vector<Record>& out,
                                    std::size_t max) {
  out.clear();
  Impl& im = *impl_;
  while (out.size() < max) {
    if (im.blockPos >= im.blockRecords && !im.loadBlock()) break;
    const std::size_t take =
        std::min(max - out.size(), im.blockRecords - im.blockPos);
    const std::uint8_t* rec = im.block.data() + im.blockPos * kRecordBytes;
    const std::size_t tableSize = im.fileIdToNode.size();
    for (std::size_t i = 0; i < take; ++i, rec += kRecordBytes) {
      // le32/le64 compile to single unaligned loads on LE targets, so
      // this is the memcpy decode loop with byte order pinned for free.
      const std::uint32_t fileId = le32(rec);
      const std::int64_t time = static_cast<std::int64_t>(le64(rec + 4));
      if (fileId >= tableSize) {
        // Rewind so accounting stays exact if the caller catches and
        // retries: everything before this record was consumed.
        im.blockPos += i;
        im.decodedTotal += i;
        throw SnapshotError("binary trace: file id outside path table");
      }
      const NodeId node = im.fileIdToNode[fileId];
      if (node == kInvalidNode) {
        ++skipped_;
        continue;
      }
      out.push_back(Record{node, static_cast<Timestamp>(time)});
    }
    im.blockPos += take;
    im.decodedTotal += take;
  }
  return out.size();
}

namespace {

/// RAII temp file that self-deletes unless released (published by rename).
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() {
    if (!path.empty()) std::remove(path.c_str());
  }
  void release() { path.clear(); }
};

void writeOrThrow(std::ofstream& out, const std::uint8_t* data,
                  std::size_t n, const char* what) {
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) throw SnapshotError(what);
}

}  // namespace

BinaryConvertStats convertCsvTraceToBinary(const std::string& csvPath,
                                           const std::string& binaryPath) {
  std::ifstream csv(csvPath);
  if (!csv) throw SnapshotError("convert: cannot open CSV trace");

  // Single pass: records spool to a side temp file in final block framing
  // while the path table (which must precede them) accumulates in memory;
  // the published file is prologue + table + spooled blocks.
  TempFile spool(binaryPath + ".rec.tmp");
  std::ofstream rec(spool.path, std::ios::binary | std::ios::trunc);
  if (!rec) throw SnapshotError("convert: cannot open temp record file");

  BinaryConvertStats stats;
  std::unordered_map<std::string, std::uint32_t> fileIds;
  Serializer table;  // str entries appended as paths first appear
  std::uint64_t tablePaths = 0;

  std::vector<std::uint8_t> blockBuf;
  blockBuf.reserve(4 + kConvertBlockRecords * kRecordBytes);
  std::size_t blockCount = 0;
  const auto flushBlock = [&] {
    if (blockCount == 0) return;
    std::uint8_t prefix[4];
    putLe32(prefix, static_cast<std::uint32_t>(blockCount));
    writeOrThrow(rec, prefix, 4, "convert: temp record write failed");
    writeOrThrow(rec, blockBuf.data(), blockBuf.size(),
                 "convert: temp record write failed");
    blockBuf.clear();
    blockCount = 0;
  };

  std::string line;
  std::vector<std::string> quoted;
  while (std::getline(csv, line)) {
    if (line.empty()) continue;
    std::string_view path;
    Timestamp t = 0;
    if (!parseCsvTraceRow(line, quoted, path, t)) {
      ++stats.skippedRows;
      continue;
    }
    auto [it, inserted] = fileIds.emplace(path, tablePaths);
    if (inserted) {
      table.str(path);
      ++tablePaths;
    }
    std::uint8_t encoded[kRecordBytes];
    putLe32(encoded, it->second);
    putLe64(encoded + 4, static_cast<std::uint64_t>(t));
    blockBuf.insert(blockBuf.end(), encoded, encoded + kRecordBytes);
    ++stats.records;
    if (++blockCount == kConvertBlockRecords) flushBlock();
  }
  if (csv.bad()) throw SnapshotError("convert: CSV read failed");
  flushBlock();
  rec.flush();
  if (!rec) throw SnapshotError("convert: temp record write failed");
  rec.close();
  stats.paths = tablePaths;

  // Assemble the published file next to the target, then rename: a crash
  // never leaves a half-written trace under the final name.
  TempFile tmp(binaryPath + ".tmp");
  {
    std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("convert: cannot open output file");
    Serializer header;
    header.u32(kBinaryTraceMagic);
    header.u32(kBinaryTraceVersion);
    header.u64(stats.records);
    // The table is framed as count + entries; the count lives with the
    // entries (not the prologue) so Deserializer::count() bounds it.
    Serializer framedTable;
    framedTable.u64(tablePaths);
    framedTable.raw(table.data());
    header.u64(framedTable.size());
    header.raw(framedTable.data());
    writeOrThrow(out, header.data().data(), header.size(),
                 "convert: output write failed");
    std::ifstream back(spool.path, std::ios::binary);
    if (!back) throw SnapshotError("convert: cannot reopen temp records");
    std::vector<char> chunk(std::size_t{256} << 10);
    while (back) {
      back.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      const auto got = back.gcount();
      if (got > 0) {
        out.write(chunk.data(), got);
        if (!out) throw SnapshotError("convert: output write failed");
      }
    }
    out.flush();
    if (!out) throw SnapshotError("convert: output write failed");
    stats.bytesWritten = header.size();
  }
  std::ifstream sized(tmp.path, std::ios::binary | std::ios::ate);
  if (sized) stats.bytesWritten = static_cast<std::size_t>(sized.tellg());
  sized.close();
  if (std::rename(tmp.path.c_str(), binaryPath.c_str()) != 0) {
    throw SnapshotError("convert: cannot publish output file");
  }
  tmp.release();
  return stats;
}

std::unique_ptr<RecordSource> openTraceSource(const std::string& path,
                                              const Hierarchy& hierarchy) {
  std::uint8_t head[4] = {0, 0, 0, 0};
  {
    std::ifstream probe(path, std::ios::binary);
    TIRESIAS_EXPECT(static_cast<bool>(probe), "cannot open trace file");
    probe.read(reinterpret_cast<char*>(head), 4);
    if (probe.gcount() != 4) {
      // Shorter than any binary prologue: treat as (tiny) CSV.
      return std::make_unique<CsvSource>(path, hierarchy);
    }
  }
  if (le32(head) == kBinaryTraceMagic) {
    return std::make_unique<BinarySource>(path, hierarchy);
  }
  return std::make_unique<CsvSource>(path, hierarchy);
}

}  // namespace tiresias
