// The unit of operational data (the paper's s_i = (k_i, t_i)): a category
// drawn from a hierarchical domain plus a second-resolution timestamp.
#pragma once

#include "common/timeutil.h"
#include "hierarchy/hierarchy.h"

namespace tiresias {

struct Record {
  NodeId category = kInvalidNode;  // leaf (or interior) node of the domain
  Timestamp time = 0;

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace tiresias
