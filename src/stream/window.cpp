#include "stream/window.h"

#include "common/expect.h"

namespace tiresias {

TimeUnitBatcher::TimeUnitBatcher(RecordSource& source, Duration delta,
                                 Timestamp startTime, std::size_t chunkSize)
    : source_(source),
      delta_(delta),
      nextUnit_(timeUnitOf(startTime, delta)),
      chunkSize_(chunkSize) {
  TIRESIAS_EXPECT(delta > 0, "timeunit size must be positive");
  TIRESIAS_EXPECT(chunkSize > 0, "chunk size must be positive");
}

bool TimeUnitBatcher::refill() {
  if (sourceDone_) return false;
  chunkPos_ = 0;
  const std::size_t pulled = source_.nextBatch(chunk_, chunkSize_);
  if (pulled == 0) {
    sourceDone_ = true;
    return false;
  }
  consumed_ += pulled;
  return true;
}

bool TimeUnitBatcher::next(TimeUnitBatch& out) {
  out.records.clear();
  if (!begun_) {
    // Skip records older than the first unit of interest. Sources are
    // time-ordered, so these can only lead the stream.
    const Timestamp firstStart = unitStart(nextUnit_, delta_);
    for (;;) {
      if (chunkPos_ >= chunk_.size() && !refill()) break;
      if (chunk_[chunkPos_].time >= firstStart) break;
      ++dropped_;
      ++chunkPos_;
    }
    begun_ = true;
  }
  if (chunkPos_ >= chunk_.size() && !refill()) return false;

  out.unit = nextUnit_;
  // This unit covers [lo, hi); comparing against the precomputed bounds
  // replaces the per-record floor division of timeUnitOf.
  const Timestamp lo = unitStart(nextUnit_, delta_);
  const Timestamp hi = unitStart(nextUnit_ + 1, delta_);
  for (;;) {
    // Extend over the run of records that fall inside this unit, then copy
    // the run in one splice.
    std::size_t runEnd = chunkPos_;
    while (runEnd < chunk_.size() && chunk_[runEnd].time < hi) {
      TIRESIAS_EXPECT(chunk_[runEnd].time >= lo,
                      "records must arrive in non-decreasing time order");
      ++runEnd;
    }
    out.records.insert(out.records.end(), chunk_.begin() + chunkPos_,
                       chunk_.begin() + runEnd);
    chunkPos_ = runEnd;
    if (chunkPos_ < chunk_.size()) break;  // next record is a future unit
    if (!refill()) break;                  // source exhausted mid-unit
  }
  ++nextUnit_;
  return true;
}

void TimeUnitBatcher::saveState(persist::Serializer& out) const {
  out.i64(delta_);
  out.i64(nextUnit_);
  out.boolean(begun_);
  out.boolean(sourceDone_);
  out.u64(dropped_);
  out.u64(consumed_);
  // Read-ahead records already pulled from the source but not yet emitted.
  out.u64(chunk_.size() - chunkPos_);
  for (std::size_t i = chunkPos_; i < chunk_.size(); ++i) {
    out.u32(chunk_[i].category);
    out.i64(chunk_[i].time);
  }
}

void TimeUnitBatcher::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.i64() == delta_,
                        "batcher snapshot: timeunit size mismatch");
  const TimeUnit nextUnit = in.i64();
  const bool begun = in.boolean();
  const bool sourceDone = in.boolean();
  const std::size_t dropped = in.u64();
  const std::size_t consumed = in.u64();
  const std::size_t pending =
      in.count(sizeof(std::uint32_t) + sizeof(std::int64_t));
  std::vector<Record> chunk(pending);
  for (auto& r : chunk) {
    r.category = in.u32();
    r.time = in.i64();
  }

  nextUnit_ = nextUnit;
  begun_ = begun;
  sourceDone_ = sourceDone;
  dropped_ = dropped;
  consumed_ = consumed;
  chunk_ = std::move(chunk);
  chunkPos_ = 0;
}

std::optional<TimeUnitBatch> TimeUnitBatcher::next() {
  TimeUnitBatch batch;
  if (!next(batch)) return std::nullopt;
  return batch;
}

}  // namespace tiresias
