#include "stream/window.h"

#include "common/expect.h"

namespace tiresias {

TimeUnitBatcher::TimeUnitBatcher(RecordSource& source, Duration delta,
                                 Timestamp startTime, std::size_t chunkSize)
    : source_(source),
      delta_(delta),
      nextUnit_(timeUnitOf(startTime, delta)),
      chunkSize_(chunkSize) {
  TIRESIAS_EXPECT(delta > 0, "timeunit size must be positive");
  TIRESIAS_EXPECT(chunkSize > 0, "chunk size must be positive");
}

bool TimeUnitBatcher::refill() {
  if (sourceDone_) return false;
  chunkPos_ = 0;
  if (source_.nextBatch(chunk_, chunkSize_) == 0) {
    sourceDone_ = true;
    return false;
  }
  return true;
}

bool TimeUnitBatcher::next(TimeUnitBatch& out) {
  out.records.clear();
  if (!begun_) {
    // Skip records older than the first unit of interest. Sources are
    // time-ordered, so these can only lead the stream.
    const Timestamp firstStart = unitStart(nextUnit_, delta_);
    for (;;) {
      if (chunkPos_ >= chunk_.size() && !refill()) break;
      if (chunk_[chunkPos_].time >= firstStart) break;
      ++dropped_;
      ++chunkPos_;
    }
    begun_ = true;
  }
  if (chunkPos_ >= chunk_.size() && !refill()) return false;

  out.unit = nextUnit_;
  // This unit covers [lo, hi); comparing against the precomputed bounds
  // replaces the per-record floor division of timeUnitOf.
  const Timestamp lo = unitStart(nextUnit_, delta_);
  const Timestamp hi = unitStart(nextUnit_ + 1, delta_);
  for (;;) {
    // Extend over the run of records that fall inside this unit, then copy
    // the run in one splice.
    std::size_t runEnd = chunkPos_;
    while (runEnd < chunk_.size() && chunk_[runEnd].time < hi) {
      TIRESIAS_EXPECT(chunk_[runEnd].time >= lo,
                      "records must arrive in non-decreasing time order");
      ++runEnd;
    }
    out.records.insert(out.records.end(), chunk_.begin() + chunkPos_,
                       chunk_.begin() + runEnd);
    chunkPos_ = runEnd;
    if (chunkPos_ < chunk_.size()) break;  // next record is a future unit
    if (!refill()) break;                  // source exhausted mid-unit
  }
  ++nextUnit_;
  return true;
}

std::optional<TimeUnitBatch> TimeUnitBatcher::next() {
  TimeUnitBatch batch;
  if (!next(batch)) return std::nullopt;
  return batch;
}

}  // namespace tiresias
