#include "stream/window.h"

#include "common/expect.h"

namespace tiresias {

TimeUnitBatcher::TimeUnitBatcher(RecordSource& source, Duration delta,
                                 Timestamp startTime)
    : source_(source),
      delta_(delta),
      nextUnit_(timeUnitOf(startTime, delta)) {
  TIRESIAS_EXPECT(delta > 0, "timeunit size must be positive");
}

std::optional<TimeUnitBatch> TimeUnitBatcher::next() {
  // Skip records older than the first unit of interest.
  while (!pending_ && !sourceDone_) {
    pending_ = source_.next();
    if (!pending_) {
      sourceDone_ = true;
      break;
    }
    if (timeUnitOf(pending_->time, delta_) < nextUnit_) {
      ++dropped_;
      pending_.reset();
    }
  }
  if (sourceDone_ && !pending_) return std::nullopt;

  TimeUnitBatch batch;
  batch.unit = nextUnit_;
  while (true) {
    if (!pending_) {
      if (sourceDone_) break;
      pending_ = source_.next();
      if (!pending_) {
        sourceDone_ = true;
        break;
      }
      TIRESIAS_EXPECT(timeUnitOf(pending_->time, delta_) >= nextUnit_,
                      "records must arrive in non-decreasing time order");
    }
    if (timeUnitOf(pending_->time, delta_) != nextUnit_) break;
    batch.records.push_back(*pending_);
    pending_.reset();
  }
  ++nextUnit_;
  return batch;
}

}  // namespace tiresias
