#include "stream/window.h"

#include "common/expect.h"

namespace tiresias {

TimeUnitBatcher::TimeUnitBatcher(RecordSource& source, Duration delta,
                                 Timestamp startTime, std::size_t chunkSize)
    : source_(source),
      delta_(delta),
      nextUnit_(timeUnitOf(startTime, delta)),
      chunkSize_(chunkSize) {
  TIRESIAS_EXPECT(delta > 0, "timeunit size must be positive");
  TIRESIAS_EXPECT(chunkSize > 0, "chunk size must be positive");
}

TimeUnitBatcher::Refill TimeUnitBatcher::refill() {
  if (sourceDone_) return Refill::kEnd;
  chunkPos_ = 0;
  const std::size_t pulled = source_.nextBatch(chunk_, chunkSize_);
  if (pulled == 0) {
    if (source_.idle()) return Refill::kIdle;  // waiting, not ended
    sourceDone_ = true;
    return Refill::kEnd;
  }
  consumed_ += pulled;
  return Refill::kData;
}

TimeUnitBatcher::Pull TimeUnitBatcher::pull(TimeUnitBatch& out) {
  out.records.clear();
  if (!begun_) {
    // Skip records older than the first unit of interest. Sources are
    // time-ordered, so these can only lead the stream.
    const Timestamp firstStart = unitStart(nextUnit_, delta_);
    for (;;) {
      if (chunkPos_ >= chunk_.size()) {
        const Refill r = refill();
        if (r == Refill::kIdle) return Pull::kIdle;  // nothing seen yet
        if (r == Refill::kEnd) break;
      }
      if (chunk_[chunkPos_].time >= firstStart) break;
      ++dropped_;
      ++chunkPos_;
    }
    begun_ = true;
  }
  if (!carry_.empty()) {
    // Resume the unit a kIdle pull parked; its records lead the batch.
    out.records.swap(carry_);
  } else if (chunkPos_ >= chunk_.size()) {
    const Refill r = refill();
    if (r == Refill::kIdle) return Pull::kIdle;
    if (r == Refill::kEnd) return Pull::kEnd;
  }

  out.unit = nextUnit_;
  // This unit covers [lo, hi); comparing against the precomputed bounds
  // replaces the per-record floor division of timeUnitOf.
  const Timestamp lo = unitStart(nextUnit_, delta_);
  const Timestamp hi = unitStart(nextUnit_ + 1, delta_);
  for (;;) {
    // Extend over the run of records that fall inside this unit, then copy
    // the run in one splice.
    std::size_t runEnd = chunkPos_;
    while (runEnd < chunk_.size() && chunk_[runEnd].time < hi) {
      TIRESIAS_EXPECT(chunk_[runEnd].time >= lo,
                      "records must arrive in non-decreasing time order");
      ++runEnd;
    }
    out.records.insert(out.records.end(), chunk_.begin() + chunkPos_,
                       chunk_.begin() + runEnd);
    chunkPos_ = runEnd;
    if (chunkPos_ < chunk_.size()) break;  // next record is a future unit
    const Refill r = refill();
    if (r == Refill::kIdle) {
      // The unit cannot be closed yet (a future record may still belong
      // to it): park the partial and report idle.
      carry_.swap(out.records);
      out.records.clear();
      return Pull::kIdle;
    }
    if (r == Refill::kEnd) break;  // source exhausted mid-unit
  }
  ++nextUnit_;
  return Pull::kUnit;
}

bool TimeUnitBatcher::next(TimeUnitBatch& out) {
  for (;;) {
    switch (pull(out)) {
      case Pull::kUnit:
        return true;
      case Pull::kEnd:
        return false;
      case Pull::kIdle:
        continue;  // blocking semantics: retry until a unit or the end
    }
  }
}

void TimeUnitBatcher::saveState(persist::Serializer& out) const {
  out.i64(delta_);
  out.i64(nextUnit_);
  out.boolean(begun_);
  out.boolean(sourceDone_);
  out.u64(dropped_);
  out.u64(consumed_);
  // Read-ahead records already pulled from the source but not yet
  // emitted: a partial unit parked by an idle pull first (it precedes
  // the chunk remainder in stream order), then the chunk remainder.
  out.u64(carry_.size() + (chunk_.size() - chunkPos_));
  for (const Record& r : carry_) {
    out.u32(r.category);
    out.i64(r.time);
  }
  for (std::size_t i = chunkPos_; i < chunk_.size(); ++i) {
    out.u32(chunk_[i].category);
    out.i64(chunk_[i].time);
  }
}

void TimeUnitBatcher::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.i64() == delta_,
                        "batcher snapshot: timeunit size mismatch");
  const TimeUnit nextUnit = in.i64();
  const bool begun = in.boolean();
  const bool sourceDone = in.boolean();
  const std::size_t dropped = in.u64();
  const std::size_t consumed = in.u64();
  const std::size_t pending =
      in.count(sizeof(std::uint32_t) + sizeof(std::int64_t));
  std::vector<Record> chunk(pending);
  for (auto& r : chunk) {
    r.category = in.u32();
    r.time = in.i64();
  }

  nextUnit_ = nextUnit;
  begun_ = begun;
  sourceDone_ = sourceDone;
  dropped_ = dropped;
  consumed_ = consumed;
  chunk_ = std::move(chunk);
  chunkPos_ = 0;
  carry_.clear();
}

std::optional<TimeUnitBatch> TimeUnitBatcher::next() {
  TimeUnitBatch batch;
  if (!next(batch)) return std::nullopt;
  return batch;
}

}  // namespace tiresias
