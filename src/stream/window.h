// Timeunit batching (Step 1 of the paper's pipeline, Fig 3(b)).
//
// A TimeUnitBatcher pulls time-ordered records from a RecordSource and
// groups them into consecutive fixed-size timeunits of length Δ, emitting
// empty batches for quiet units (a zero count is a real observation for the
// forecasting models, not missing data). The sliding-window bookkeeping
// (ℓ history units, increment ς) lives in the detectors; the paper's
// ς < Δ case is handled by batching at resolution ς and aggregating with
// timeseries::MultiScaleSeries (§V-B6).
#pragma once

#include <optional>
#include <vector>

#include "stream/source.h"

namespace tiresias {

struct TimeUnitBatch {
  TimeUnit unit = 0;  // index: records fall in [unit*delta, (unit+1)*delta)
  std::vector<Record> records;
};

class TimeUnitBatcher {
 public:
  /// Batches `source` into units of `delta` seconds. The first emitted unit
  /// is the one containing `startTime` (records before it are dropped and
  /// counted in droppedRecords()).
  TimeUnitBatcher(RecordSource& source, Duration delta, Timestamp startTime);

  /// The next timeunit in sequence (possibly with no records); nullopt once
  /// the source is exhausted and all buffered records are delivered.
  std::optional<TimeUnitBatch> next();

  Duration delta() const { return delta_; }
  std::size_t droppedRecords() const { return dropped_; }

 private:
  RecordSource& source_;
  Duration delta_;
  TimeUnit nextUnit_;
  std::optional<Record> pending_;
  bool sourceDone_ = false;
  std::size_t dropped_ = 0;
};

}  // namespace tiresias
