// Timeunit batching (Step 1 of the paper's pipeline, Fig 3(b)).
//
// A TimeUnitBatcher pulls time-ordered records from a RecordSource and
// groups them into consecutive fixed-size timeunits of length Δ, emitting
// empty batches for quiet units (a zero count is a real observation for the
// forecasting models, not missing data). The sliding-window bookkeeping
// (ℓ history units, increment ς) lives in the detectors; the paper's
// ς < Δ case is handled by batching at resolution ς and aggregating with
// timeseries::MultiScaleSeries (§V-B6).
//
// The batcher is built on RecordSource::nextBatch: it pulls records in
// chunks into a reused buffer and slices unit boundaries with plain
// timestamp comparisons (one precomputed boundary per unit — no per-record
// division, no per-record virtual call). next(TimeUnitBatch&) reuses the
// caller's batch storage; the optional-returning next() is a convenience
// wrapper for callers that want fresh batches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "persist/snapshot.h"
#include "stream/source.h"

namespace tiresias {

struct TimeUnitBatch {
  TimeUnit unit = 0;  // index: records fall in [unit*delta, (unit+1)*delta)
  std::vector<Record> records;
  /// Monotonic stamp (ns) set by the engine when the unit is enqueued for
  /// processing; 0 when untracked. Only deltas against monotonicNanos()
  /// are meaningful — the metrics layer turns enqueue -> processed into
  /// the end-to-end unit-latency histogram. Not persisted.
  std::int64_t enqueueNs = 0;
};

class TimeUnitBatcher {
 public:
  /// Records pulled from the source per nextBatch call.
  static constexpr std::size_t kDefaultChunk = 4096;

  /// Batches `source` into units of `delta` seconds. The first emitted unit
  /// is the one containing `startTime` (leading records before it are
  /// dropped and counted in droppedRecords()).
  TimeUnitBatcher(RecordSource& source, Duration delta, Timestamp startTime,
                  std::size_t chunkSize = kDefaultChunk);

  /// One pull outcome: a unit was emitted, the source is transiently
  /// idle (no unit ready *yet* — see RecordSource::idle()), or the
  /// source is exhausted and everything buffered has been delivered.
  enum class Pull : std::uint8_t { kUnit, kIdle, kEnd };

  /// Fills `out` with the next timeunit in sequence (possibly with no
  /// records), reusing out.records' capacity. kIdle parks any partial
  /// unit internally and leaves `out` empty: the caller may run other
  /// work (the engine uses this window for checkpoint quiesce) and pull
  /// again; the unit resumes where it stopped.
  Pull pull(TimeUnitBatch& out);

  /// pull() with kIdle retried until a unit or the end: false once the
  /// source is exhausted and all buffered records are delivered.
  bool next(TimeUnitBatch& out);

  /// Convenience wrapper around next(TimeUnitBatch&) returning a fresh
  /// batch per unit; nullopt at end of stream.
  std::optional<TimeUnitBatch> next();

  Duration delta() const { return delta_; }
  std::size_t droppedRecords() const { return dropped_; }
  /// Records pulled from the source so far (delivered + dropped + still
  /// buffered in the read-ahead chunk). A resumable source can be
  /// repositioned past exactly this many records before loadState().
  std::size_t consumedRecords() const { return consumed_; }

  /// Snapshot the batching position: the next unit index, drop/consume
  /// accounting, and the read-ahead records pulled from the source but not
  /// yet emitted.
  void saveState(persist::Serializer& out) const;
  /// Restore onto a batcher whose source continues exactly where the
  /// saved batcher's source stopped (i.e. positioned `consumedRecords()`
  /// records in). Throws persist::SnapshotError on malformed input or a
  /// delta mismatch.
  void loadState(persist::Deserializer& in);

 private:
  enum class Refill : std::uint8_t { kData, kIdle, kEnd };

  /// Pulls the next chunk; kIdle on an empty pull from a source that is
  /// merely waiting, kEnd once it is exhausted.
  Refill refill();

  RecordSource& source_;
  Duration delta_;
  TimeUnit nextUnit_;
  std::vector<Record> chunk_;
  std::size_t chunkPos_ = 0;
  std::size_t chunkSize_;
  /// Records of the in-progress unit parked by a kIdle pull (already
  /// consumed from chunk_, not yet emitted).
  std::vector<Record> carry_;
  bool begun_ = false;  // pre-start records are only dropped up front
  bool sourceDone_ = false;
  std::size_t dropped_ = 0;
  std::size_t consumed_ = 0;  // total records pulled from the source
};

}  // namespace tiresias
