#include "stream/stream_router.h"

#include <chrono>

namespace tiresias {

namespace {

using net::IoStatus;

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void putLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void putLe64(std::uint8_t* p, std::uint64_t v) {
  putLe32(p, static_cast<std::uint32_t>(v));
  putLe32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

int remainingMs(int totalMs, std::chrono::steady_clock::time_point start) {
  if (totalMs < 0) return -1;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const long long left = static_cast<long long>(totalMs) - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Accept tick: short enough that stop() is responsive, long enough that
/// an idle router costs nothing measurable.
constexpr int kAcceptTickMs = 200;

}  // namespace

StreamRouter::StreamRouter(std::shared_ptr<net::TcpListener> listener,
                           Options options)
    : listener_(std::move(listener)), opt_(std::move(options)) {
  net::ignoreSigpipe();
}

StreamRouter::~StreamRouter() { stop(); }

std::size_t StreamRouter::addNamedSlot(std::string name) {
  const std::size_t id = slots_.size();
  byName_.emplace(name, id);
  slots_.push_back(Slot{std::move(name), {}});
  return id;
}

std::size_t StreamRouter::addAnonymousSlot() {
  const std::size_t id = slots_.size();
  slots_.push_back(Slot{{}, {}});
  ++anonymousSlots_;
  return id;
}

void StreamRouter::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { routeLoop(); });
}

void StreamRouter::stop() {
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StreamRouter::routeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    net::TcpConn conn = listener_->accept(kAcceptTickMs);
    if (stop_.load(std::memory_order_acquire)) break;
    if (!conn.valid()) continue;  // tick elapsed or transient failure
    routeOne(std::move(conn));
  }
}

void StreamRouter::routeOne(net::TcpConn conn) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (opt_.shedPredicate && opt_.shedPredicate()) {
    // Overloaded: refuse before reading a byte. The client sees the close
    // and retries with backoff; no ingest queue gets deeper for it.
    shed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Routed routed;
  if (opt_.format == SocketSourceOptions::Format::kCsv) {
    routed.conn = std::move(conn);
    deliverAnonymous(std::move(routed));
    return;
  }
  // Sniff the magic + version — just enough to route. Everything consumed
  // lands in `head` so the source can replay it.
  const auto start = std::chrono::steady_clock::now();
  std::uint8_t head[8];
  std::size_t have = 0;
  while (have < 8) {
    std::size_t got = 0;
    const IoStatus st =
        conn.readSome(head + have, 8 - have, got,
                      remainingMs(opt_.handshakeTimeoutMs, start));
    if (st == IoStatus::kOk) {
      have += got;
      continue;
    }
    if (st == IoStatus::kEof) {
      routed.headEof = true;
      break;
    }
    // Stalled or errored before identifying itself: not routable.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  routed.head.assign(head, head + have);
  const bool v2 = have == 8 && le32(head) == kSocketStreamMagic &&
                  le32(head + 4) == kSocketStreamVersion2;
  if (!v2) {
    // v1 binary, CSV, or junk — all positional; the source sorts it out.
    routed.conn = std::move(conn);
    deliverAnonymous(std::move(routed));
    return;
  }
  // v2: the name decides the slot. Read nameLen | name | token, keeping
  // every byte in head for the source's own handshake parse.
  std::uint8_t fixed[8];
  std::size_t got = 0;
  if (conn.readExact(fixed, 4, got, remainingMs(opt_.handshakeTimeoutMs,
                                                start)) != IoStatus::kOk) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  routed.head.insert(routed.head.end(), fixed, fixed + 4);
  const std::uint32_t nameLen = le32(fixed);
  if (nameLen == 0 || nameLen > kSocketMaxStreamNameBytes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string name(nameLen, '\0');
  if (conn.readExact(name.data(), nameLen, got,
                     remainingMs(opt_.handshakeTimeoutMs, start)) !=
      IoStatus::kOk) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  routed.head.insert(routed.head.end(), name.begin(), name.end());
  if (conn.readExact(fixed, 8, got, remainingMs(opt_.handshakeTimeoutMs,
                                                start)) != IoStatus::kOk) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  routed.head.insert(routed.head.end(), fixed, fixed + 8);
  const auto it = byName_.find(name);  // immutable after start(): no lock
  if (it == byName_.end()) {
    // Tell the client this is fatal (wrong name, not a flaky network) so
    // its retry loop stops instead of hammering us.
    std::uint8_t reply[12];
    putLe32(reply, kSocketResumeUnknownStream);
    putLe64(reply + 4, static_cast<std::uint64_t>(kSocketNoCommit));
    conn.writeAll(reply, sizeof(reply), 1'000);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  routed.conn = std::move(conn);
  {
    std::lock_guard lk(mu_);
    auto& queue = slots_[it->second].queue;
    // Newest wins: a waiting connection for the same name is a client
    // retry we never served — drop it (RAII close) for the fresh one.
    queue.clear();
    queue.push_back(std::move(routed));
  }
  cv_.notify_all();
}

void StreamRouter::deliverAnonymous(Routed routed) {
  {
    std::lock_guard lk(mu_);
    if (anonymousSlots_ == 0 || anonymous_.size() >= anonymousSlots_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    anonymous_.push_back(std::move(routed));
  }
  cv_.notify_all();
}

std::optional<StreamRouter::Routed> StreamRouter::await(std::size_t slot,
                                                        int timeoutMs) {
  std::unique_lock lk(mu_);
  const bool named = !slots_[slot].name.empty();
  const auto ready = [&] {
    if (stop_.load(std::memory_order_acquire)) return true;
    return named ? !slots_[slot].queue.empty() : !anonymous_.empty();
  };
  if (timeoutMs < 0) {
    cv_.wait(lk, ready);
  } else if (!cv_.wait_for(lk, std::chrono::milliseconds(timeoutMs), ready)) {
    return std::nullopt;
  }
  auto& queue = named ? slots_[slot].queue : anonymous_;
  if (queue.empty()) return std::nullopt;  // woken by stop()
  Routed r = std::move(queue.front());
  queue.pop_front();
  return r;
}

}  // namespace tiresias
