// Socket-fed record ingest: the serving surface's input side.
//
// A SocketSource is a RecordSource whose records arrive over TCP instead
// of a file, so a registered engine stream can sit in front of live
// traffic while everything downstream (TimeUnitBatcher, scheduler
// backpressure, checkpointing, metrics) stays unchanged. Two wire
// formats, auto-detected per connection by the first eight bytes:
//
//   binary ("TSRS" stream framing — the `.tsrb` record encoding, framed
//   for a stream that has no length up front):
//     handshake v1:  magic "TSRS" u32 | version u32 (=1) | tableBytes u64,
//                    then the path table in TSNP Serializer framing
//                    (u64 pathCount, then pathCount × str) — identical to
//                    a `.tsrb` file's table; a path's file-id is its index.
//     handshake v2:  magic | version u32 (=2) | nameLen u32 | name bytes |
//                    resumeToken u64 | tableBytes u64 | table. The name
//                    binds the connection to a logical stream, so a
//                    reconnecting client resumes *its* stream instead of
//                    minting a fresh positional one. After reading the
//                    table the server replies with 12 bytes:
//                    status u32 (0 ok, 1 unknown stream, 2 shed) |
//                    committedTime i64 — the earliest timestamp the
//                    server still needs; the client skips everything
//                    before it (kSocketNoCommit = nothing committed).
//     frames:        u32 count | count × { u32 fileId, i64 timestamp }
//                    (12 bytes per record, little-endian, same as `.tsrb`
//                    blocks). count == 0 is the explicit end-of-stream
//                    marker; a clean EOF at a frame boundary also ends
//                    the stream (v1) or awaits a reconnect (resumable v2).
//   csv: newline-separated "<category-path>,<timestamp>" rows, exactly
//     CsvSource's accept/skip semantics (shared parseCsvTraceRow +
//     PathCache), so `nc server port < trace.csv` just works. The sniff
//     requires all eight magic+version bytes to match a known version, so
//     a CSV row that merely starts with the literal "TSRS" is CSV.
//
// Hardening (the engine's ingest loop has no exception handling and
// TIRESIAS_EXPECT aborts, so network input must never reach either):
//   - the pull paths never throw: every structural problem — bad magic or
//     version, an implausible table/frame size, a truncated frame, a
//     file-id outside the table, a read timeout, a CSV line past the
//     length cap — drops the connection cleanly and counts it in
//     protocolErrors(); a non-resumable source then reports end of
//     stream, a resumable one waits for the named client to reconnect
//     (until its protocol-error budget runs out).
//   - record-level junk — unresolvable paths, rows CsvSource would skip,
//     and records whose timestamp runs backwards (the batcher requires
//     non-decreasing time; a misbehaving client must not abort the
//     server) — is skipped and counted in skippedRecords(), never fatal.
//     An optional per-connection junk budget drops clients that are
//     clearly streaming garbage.
//   - all reads retry EINTR, handle partial delivery, and are bounded by
//     a per-connection timeout; SIGPIPE is ignored process-wide.
//
// Resume correctness (bit-identical replay across reconnects and
// restarts) comes from unit-granular commits: with `unitDelta` set, a
// resumable source holds the records of the current — possibly still
// incomplete — timeunit in a staging buffer and only releases whole
// units downstream. committedTime is always the start of the staged
// unit, so on a disconnect the staged partial is discarded and the
// reconnecting client re-sends exactly from the commit point: no record
// is delivered twice, none is lost. After a crash + `--restore`, the
// engine seeds committedTime with the pipeline's resume position
// (noteResumePoint), closing the same loop across process restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "net/tcp.h"
#include "stream/source.h"

namespace tiresias {

class StreamRouter;

/// "TSRS": the stream variant of the "TSRB" trace magic.
inline constexpr std::uint32_t kSocketStreamMagic = 0x53525354;
inline constexpr std::uint32_t kSocketStreamVersion = 1;
/// v2 adds the stream-name + resume-token handshake fields and the
/// server's resume reply.
inline constexpr std::uint32_t kSocketStreamVersion2 = 2;
/// Per-frame record ceiling (16 MiB payload), same bound as a `.tsrb`
/// block: a corrupted count must never drive the frame buffer allocation.
inline constexpr std::uint32_t kSocketMaxFrameRecords = 1u << 20;
/// Handshake path-table ceiling. Unlike a file there is no size to check
/// against, so the bound is explicit (64 MiB of paths is far beyond any
/// real hierarchy).
inline constexpr std::uint64_t kSocketMaxTableBytes = std::uint64_t{64}
                                                      << 20;
/// v2 stream-name ceiling: a name is an identifier, not a payload.
inline constexpr std::uint32_t kSocketMaxStreamNameBytes = 256;
/// CSV mode: a line longer than this (no newline in 1 MiB) is structural
/// corruption, not a record.
inline constexpr std::size_t kSocketMaxCsvLineBytes = std::size_t{1} << 20;

/// v2 resume-reply status codes.
inline constexpr std::uint32_t kSocketResumeOk = 0;
inline constexpr std::uint32_t kSocketResumeUnknownStream = 1;
inline constexpr std::uint32_t kSocketResumeShed = 2;
/// committedTime sentinel: the server has committed nothing yet — send
/// the stream from the beginning.
inline constexpr Timestamp kSocketNoCommit =
    std::numeric_limits<Timestamp>::min();

struct SocketSourceOptions {
  enum class Format : std::uint8_t { kAuto = 0, kCsv, kBinary };
  /// Wire format. kAuto sniffs the first eight bytes per connection: the
  /// "TSRS" magic followed by a known version selects binary, anything
  /// else (including a CSV category path that happens to start with the
  /// literal "TSRS") is treated as the first CSV bytes.
  Format format = Format::kAuto;
  /// Bound on every blocking step: the accept, each read. A connection
  /// idle past this is considered dead and dropped (protocol error).
  int readTimeoutMs = 30'000;
  /// Timeunit width for resumable streams (> 0 enables unit-granular
  /// commit staging; must match the stream's pipeline delta). 0 = deliver
  /// records as they decode (non-resumable behavior).
  Duration unitDelta = 0;
  /// Expected v2 stream name. Non-empty marks the source *resumable*: a
  /// lost connection waits for the named client to reconnect instead of
  /// ending the stream, and v2 handshakes carrying a different name fail.
  std::string streamName;
  /// Resumable streams: how many connection-scoped protocol errors (and
  /// EOS-less disconnects) to survive before giving the stream up.
  std::size_t protocolErrorBudget = 16;
  /// When > 0, a connection whose skipped-record count passes this budget
  /// is dropped as a protocol error (a client streaming garbage at volume
  /// is indistinguishable from a framing bug). 0 = unlimited.
  std::size_t junkBudgetPerConn = 0;
  /// Bound (ms) on how long one nextBatch() pull may block while the
  /// stream is merely idle — waiting for a connection, a reconnect, or
  /// the next frame. Past it the pull returns what it has (possibly
  /// nothing, with idle() true), so the engine's ingest sweep stays
  /// responsive to checkpoint quiesce while the stream waits. Contiguous
  /// idleness still accumulates against readTimeoutMs, which keeps the
  /// overall give-up semantics. <= 0 disables the bound (a pull blocks up
  /// to readTimeoutMs, the pre-idle behavior). next() always blocks until
  /// a record or end of stream regardless.
  int pullIdleMs = 200;
};

class SocketSource final : public RecordSource {
 public:
  /// Serve the next connection accepted from `listener` (lazily, on the
  /// first pull). The listener is shared so several sources can split
  /// one ingest port.
  SocketSource(std::shared_ptr<net::TcpListener> listener,
               const Hierarchy& hierarchy, SocketSourceOptions options = {});
  /// Serve an already-connected socket (tests, ad-hoc wiring).
  SocketSource(net::TcpConn conn, const Hierarchy& hierarchy,
               SocketSourceOptions options = {});
  /// Serve connections routed to `slot` of a StreamRouter (the serve
  /// --listen wiring). With options.streamName set the source is
  /// resumable: every reconnect of that named stream lands back here.
  SocketSource(std::shared_ptr<StreamRouter> router, std::size_t slot,
               const Hierarchy& hierarchy, SocketSourceOptions options = {});
  ~SocketSource() override;

  std::optional<Record> next() override;
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

  /// Record-level junk: unknown categories, junk CSV rows, out-of-order
  /// timestamps. Same meaning as CsvSource/BinarySource accounting.
  std::size_t skippedRecords() const override { return skipped_; }

  /// True while the stream can still produce records: an empty nextBatch
  /// was a bounded idle wait expiring (see pullIdleMs), not the end.
  bool idle() const override;

  /// Resumable sources: the engine calls this (before the first pull)
  /// with the pipeline's restore position so a client reconnecting after
  /// a crash + --restore is told to skip the already-processed prefix.
  void noteResumePoint(Timestamp time) override;

  /// Structural failures that ended (or, on a resumable stream,
  /// interrupted) a connection: framing corruption, timeouts, truncation,
  /// a failed accept. 0 after a clean end of stream.
  std::size_t protocolErrors() const;
  /// Handshake table paths that did not resolve against the reader's
  /// hierarchy (records referencing them land in skippedRecords()).
  std::size_t unresolvedPaths() const;
  /// Connections accepted beyond the first (live gauges read these from
  /// other threads, hence atomics underneath).
  std::size_t reconnects() const;
  /// v2 handshakes answered with a real committed position (the client
  /// actually had a prefix to skip).
  std::size_t resumes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t skipped_ = 0;
};

/// Client-side framing helpers (tests, the bench writer, `tiresias_cli
/// send`). Records' `category` field is the file-id — the index into the
/// handshake path list.
std::vector<std::uint8_t> encodeSocketHandshake(
    const std::vector<std::string>& paths);
/// v2: same table, preceded by the stream name + resume token.
std::vector<std::uint8_t> encodeSocketHandshakeV2(
    const std::vector<std::string>& paths, const std::string& streamName,
    std::uint64_t resumeToken);
void appendSocketFrame(std::vector<std::uint8_t>& out, const Record* records,
                       std::size_t count);
void appendSocketEndOfStream(std::vector<std::uint8_t>& out);

/// The server's answer to a v2 handshake.
struct SocketResumeReply {
  std::uint32_t status = 0;
  Timestamp committedTime = kSocketNoCommit;
};
/// Read the 12-byte v2 resume reply. False on timeout, EOF, or error.
bool readSocketResumeReply(net::TcpConn& conn, int timeoutMs,
                           SocketResumeReply& out);

}  // namespace tiresias
