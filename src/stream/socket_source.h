// Socket-fed record ingest: the serving surface's input side.
//
// A SocketSource is a RecordSource whose records arrive over one TCP
// connection instead of a file, so a registered engine stream can sit in
// front of live traffic while everything downstream (TimeUnitBatcher,
// scheduler backpressure, checkpointing, metrics) stays unchanged. Two
// wire formats, auto-detected per connection by the first four bytes:
//
//   binary ("TSRS" stream framing — the `.tsrb` record encoding, framed
//   for a stream that has no length up front):
//     handshake:  magic "TSRS" u32 | version u32 (=1) | tableBytes u64,
//                 then the path table in TSNP Serializer framing
//                 (u64 pathCount, then pathCount × str) — identical to a
//                 `.tsrb` file's table; a path's file-id is its index.
//     frames:     u32 count | count × { u32 fileId, i64 timestamp }
//                 (12 bytes per record, little-endian, same as `.tsrb`
//                 blocks). count == 0 is the explicit end-of-stream
//                 marker; a clean EOF at a frame boundary also ends the
//                 stream.
//   csv: newline-separated "<category-path>,<timestamp>" rows, exactly
//     CsvSource's accept/skip semantics (shared parseCsvTraceRow +
//     PathCache), so `nc server port < trace.csv` just works.
//
// Hardening (the engine's ingest loop has no exception handling and
// TIRESIAS_EXPECT aborts, so network input must never reach either):
//   - the pull paths never throw: every structural problem — bad magic or
//     version, an implausible table/frame size, a truncated frame, a
//     file-id outside the table, a read timeout, a CSV line past the
//     length cap — drops the connection cleanly and counts it in
//     protocolErrors(); the source then reports end of stream.
//   - record-level junk — unresolvable paths, rows CsvSource would skip,
//     and records whose timestamp runs backwards (the batcher requires
//     non-decreasing time; a misbehaving client must not abort the
//     server) — is skipped and counted in skippedRecords(), never fatal.
//   - all reads retry EINTR, handle partial delivery, and are bounded by
//     a per-connection timeout; SIGPIPE is ignored process-wide.
//
// One SocketSource serves one connection. Several sources may share one
// TcpListener (each accepts its own connection — `serve --net-streams K`);
// the accept itself is lazy, on the first pull, and bounded by the same
// timeout.
#pragma once

#include <cstdint>
#include <memory>

#include "net/tcp.h"
#include "stream/source.h"

namespace tiresias {

/// "TSRS": the stream variant of the "TSRB" trace magic.
inline constexpr std::uint32_t kSocketStreamMagic = 0x53525354;
inline constexpr std::uint32_t kSocketStreamVersion = 1;
/// Per-frame record ceiling (16 MiB payload), same bound as a `.tsrb`
/// block: a corrupted count must never drive the frame buffer allocation.
inline constexpr std::uint32_t kSocketMaxFrameRecords = 1u << 20;
/// Handshake path-table ceiling. Unlike a file there is no size to check
/// against, so the bound is explicit (64 MiB of paths is far beyond any
/// real hierarchy).
inline constexpr std::uint64_t kSocketMaxTableBytes = std::uint64_t{64}
                                                      << 20;
/// CSV mode: a line longer than this (no newline in 1 MiB) is structural
/// corruption, not a record.
inline constexpr std::size_t kSocketMaxCsvLineBytes = std::size_t{1} << 20;

struct SocketSourceOptions {
  enum class Format : std::uint8_t { kAuto = 0, kCsv, kBinary };
  /// Wire format. kAuto sniffs the first four bytes per connection: the
  /// "TSRS" magic selects binary, anything else is treated as the first
  /// CSV bytes. Known limitation: a CSV stream whose very first row
  /// begins with the literal characters "TSRS" (a category path starting
  /// with that prefix) is mis-sniffed as binary and then dropped as a
  /// protocol error on the version check — operators with such paths
  /// must pin kCsv (`--ingest-format csv`).
  Format format = Format::kAuto;
  /// Bound on every blocking step: the accept, each read. A connection
  /// idle past this is considered dead and dropped (protocol error).
  int readTimeoutMs = 30'000;
};

class SocketSource final : public RecordSource {
 public:
  /// Serve the next connection accepted from `listener` (lazily, on the
  /// first pull). The listener is shared so several sources can split
  /// one ingest port.
  SocketSource(std::shared_ptr<net::TcpListener> listener,
               const Hierarchy& hierarchy, SocketSourceOptions options = {});
  /// Serve an already-connected socket (tests, ad-hoc wiring).
  SocketSource(net::TcpConn conn, const Hierarchy& hierarchy,
               SocketSourceOptions options = {});
  ~SocketSource() override;

  std::optional<Record> next() override;
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

  /// Record-level junk: unknown categories, junk CSV rows, out-of-order
  /// timestamps. Same meaning as CsvSource/BinarySource accounting.
  std::size_t skippedRecords() const override { return skipped_; }

  /// Structural failures that ended the connection early: framing
  /// corruption, timeouts, truncation, a failed accept. 0 after a clean
  /// end of stream.
  std::size_t protocolErrors() const;
  /// Handshake table paths that did not resolve against the reader's
  /// hierarchy (records referencing them land in skippedRecords()).
  std::size_t unresolvedPaths() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t skipped_ = 0;
};

/// Client-side framing helpers (tests, the bench writer, `tiresias_cli
/// send`). Records' `category` field is the file-id — the index into the
/// handshake path list.
std::vector<std::uint8_t> encodeSocketHandshake(
    const std::vector<std::string>& paths);
void appendSocketFrame(std::vector<std::uint8_t>& out, const Record* records,
                       std::size_t count);
void appendSocketEndOfStream(std::vector<std::uint8_t>& out);

}  // namespace tiresias
