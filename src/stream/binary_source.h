// Binary record traces: parse-free ingest.
//
// CSV field splitting and path→NodeId resolution dominate the ingest cost
// once batching removed the per-record virtual calls. The binary trace
// format eliminates both: categories are pre-resolved to small integer
// file-ids against a path table serialized once in the header, and records
// are fixed-width (u32 file-id + i64 timestamp, little-endian), so reading
// a batch is a bounds-checked memcpy loop.
//
// On-disk layout (all integers little-endian, fixed width):
//
//   +-------+---------+-------------+------------+
//   | magic | version | recordCount | tableBytes |   24-byte prologue
//   | "TSRB"| u32 (=1)| u64         | u64        |
//   +-------+---------+-------------+------------+
//   path table (tableBytes, TSNP Serializer framing):
//     u64 pathCount, then pathCount × str (u64 length + bytes);
//     a path's file-id is its position (first occurrence in the CSV).
//   record blocks until end of file:
//     u32 count (1 ≤ count ≤ kBinaryTraceMaxBlockRecords),
//     then count × { u32 fileId, i64 timestamp } — 12 bytes per record.
//
// Decoding is defensive end to end, like the snapshot codec: bad magic,
// an unknown version, a truncated header/block/record, a file-id outside
// the path table, or a record count disagreeing with the prologue all
// throw persist::SnapshotError — trace files come from disk and are
// untrusted input. A file-id whose path does not resolve against the
// *reader's* hierarchy is not corruption: it is the binary analog of a
// CSV row with an unknown category and lands in skippedRecords(), so a
// convert→ingest round trip reproduces CsvSource's accounting exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "stream/source.h"

namespace tiresias {

inline constexpr std::uint32_t kBinaryTraceMagic = 0x42525354;  // "TSRB"
inline constexpr std::uint32_t kBinaryTraceVersion = 1;
/// Ceiling for one block's record count (16 MiB of payload) — bounds the
/// block buffer a corrupted count could ask for.
inline constexpr std::uint32_t kBinaryTraceMaxBlockRecords = 1u << 20;

/// Streams records from a binary trace file. The header (including the
/// full path table resolution) is processed in the constructor, which
/// throws persist::SnapshotError on malformed input; the pull APIs throw
/// it lazily when they reach a corrupt or truncated block.
class BinarySource final : public RecordSource {
 public:
  BinarySource(std::string path, const Hierarchy& hierarchy);
  ~BinarySource() override;

  std::optional<Record> next() override;
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

  std::size_t skippedRecords() const override { return skipped_; }

  /// Paths in the file's table that did not resolve against the reader's
  /// hierarchy (each occurrence of such a record counts in
  /// skippedRecords()).
  std::size_t unresolvedPaths() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t skipped_ = 0;
};

/// Converter statistics, reported by the CLI.
struct BinaryConvertStats {
  std::size_t records = 0;      // records written
  std::size_t skippedRows = 0;  // junk CSV rows (CsvSource semantics)
  std::size_t paths = 0;        // distinct category paths in the table
  std::size_t bytesWritten = 0;
};

/// Convert a CSV trace to the binary format. Paths are recorded verbatim
/// (resolution happens at read time, against the reader's hierarchy), so
/// conversion needs no hierarchy and a converted trace replays against
/// any topology. Junk rows — the ones CsvSource would skip regardless of
/// hierarchy — are dropped and counted. Writes via temp files + rename,
/// so a crash never leaves a half-written trace under the target name.
/// Throws persist::SnapshotError on I/O failure.
BinaryConvertStats convertCsvTraceToBinary(const std::string& csvPath,
                                           const std::string& binaryPath);

/// Open a trace file as the right RecordSource: binary traces are
/// recognized by their magic, anything else is treated as CSV.
std::unique_ptr<RecordSource> openTraceSource(const std::string& path,
                                              const Hierarchy& hierarchy);

}  // namespace tiresias
