// Record sources: the abstraction the detectors pull operational data from.
//
// A RecordSource yields time-ordered records. VectorSource replays an
// in-memory trace; CsvSource streams a trace file (category-path,timestamp);
// sources produced by workload generators live in src/workload.
//
// Sources expose two pull APIs:
//   next()      — one record per virtual call; the simple reference path.
//   nextBatch() — appends up to `max` records into a caller-owned buffer.
//                 The default adapts next(); hot sources override it
//                 natively so the ingest loop is non-virtual per record and
//                 allocation-free (buffers are reused across calls).
// Both paths must yield the identical record sequence and the identical
// skippedRecords() accounting — the batched-ingest tests assert this.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/record.h"

namespace tiresias {

class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Next record in non-decreasing time order, or nullopt at end of stream.
  virtual std::optional<Record> next() = 0;

  /// Pull up to `max` records (max > 0) into `out`, clearing it first but
  /// keeping its capacity. Returns out.size(); 0 means end of stream.
  /// The default loops over next(); overrides must produce the same
  /// sequence and skip accounting.
  virtual std::size_t nextBatch(std::vector<Record>& out, std::size_t max);

  /// Rows the source consumed but could not turn into records (junk lines,
  /// unknown categories). Operational traces contain garbage; consumers
  /// surface this through RunSummary / EngineStats instead of dropping it
  /// silently. In-memory sources have nothing to skip.
  virtual std::size_t skippedRecords() const { return 0; }

  /// True when the last pull returned nothing because the stream is
  /// merely waiting for more input (a live socket between connections or
  /// frames), not because it ended. Callers that must stay responsive —
  /// the engine's ingest sweep, which parks for checkpoint quiesce
  /// between pulls — treat an empty pull with idle() true as "try again
  /// later" instead of end of stream. Replay sources are never idle.
  virtual bool idle() const { return false; }

  /// Restore hand-off: the engine calls this before the first pull with
  /// the pipeline's resume position (the start of the first timeunit it
  /// still needs). Sources that negotiate with a live producer — a
  /// resumable SocketSource telling its reconnecting client which prefix
  /// to skip — use it; replay sources ignore it (the batcher already
  /// drops the processed prefix).
  virtual void noteResumePoint(Timestamp /*time*/) {}
};

/// Path→NodeId resolution cache shared by every source that reads textual
/// category paths (file CSV, CSV-over-TCP): probes with the raw field
/// bytes (transparent hash, no key materialization on hits) and caches
/// misses too, so junk categories are as cheap as real ones. Capped —
/// operational junk is unbounded — with lookups past the cap falling back
/// to the tree walk, which stays correct. Hit accounting is exposed so
/// tests can assert both pull paths actually go through the cache.
class PathCache {
 public:
  /// Entries are cheap (path bytes + 4-byte id) but stop inserting past
  /// this many distinct paths.
  static constexpr std::size_t kCap = std::size_t{1} << 20;

  explicit PathCache(const Hierarchy& hierarchy) : hierarchy_(hierarchy) {}

  NodeId resolve(std::string_view rawPath);

  std::size_t size() const { return map_.size(); }
  std::size_t hits() const { return hits_; }

 private:
  /// Transparent hash so the cache can be probed with string_view.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const Hierarchy& hierarchy_;
  std::unordered_map<std::string, NodeId, Hash, std::equal_to<>> map_;
  std::size_t hits_ = 0;
};

/// Replays a vector of records. Verifies time ordering on construction.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records);

  std::optional<Record> next() override;
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

/// Streams records from a CSV file with rows "<category-path>,<timestamp>".
/// Category paths are resolved against the given hierarchy; unknown paths
/// are counted and skipped (operational traces contain junk rows).
///
/// nextBatch() is the fast path: it reuses the line buffer, splits plain
/// (quote-free) rows in place, and resolves paths through a per-source
/// PathCache keyed on the raw field bytes — repeated categories, the
/// overwhelmingly common case in operational traces, skip both the path
/// split and the tree walk. Unknown paths are cached too, so junk rows are
/// cheap as well; the skip accounting is identical to next()'s. Both pull
/// paths share the one cache (pathCacheHits() accrues through either).
class CsvSource final : public RecordSource {
 public:
  CsvSource(std::string path, const Hierarchy& hierarchy);
  ~CsvSource() override;

  std::optional<Record> next() override;
  std::size_t nextBatch(std::vector<Record>& out, std::size_t max) override;

  std::size_t skippedRecords() const override { return skipped_; }

  /// Path-cache observability, for tests asserting the per-record and
  /// batched paths share the same resolution cache.
  std::size_t pathCacheSize() const;
  std::size_t pathCacheHits() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t skipped_ = 0;
};

/// Writes records as CSV ("<category-path>,<timestamp>") for interchange.
void writeRecordsCsv(const std::string& path, const Hierarchy& hierarchy,
                     const std::vector<Record>& records);

/// Parse one CSV trace row ("<category-path>,<timestamp>") with exactly
/// CsvSource's accept/skip semantics (shared by its batched path and the
/// binary-trace converter, so both make identical junk decisions).
/// Returns false for junk rows. On success `path` views into `line` or
/// into `quotedScratch` (valid until either changes).
bool parseCsvTraceRow(std::string_view line,
                      std::vector<std::string>& quotedScratch,
                      std::string_view& path, Timestamp& time);

}  // namespace tiresias
