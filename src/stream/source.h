// Record sources: the abstraction the detectors pull operational data from.
//
// A RecordSource yields time-ordered records. VectorSource replays an
// in-memory trace; CsvSource streams a trace file (category-path,timestamp);
// sources produced by workload generators live in src/workload.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stream/record.h"

namespace tiresias {

class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Next record in non-decreasing time order, or nullopt at end of stream.
  virtual std::optional<Record> next() = 0;

  /// Rows the source consumed but could not turn into records (junk lines,
  /// unknown categories). Operational traces contain garbage; consumers
  /// surface this through RunSummary / EngineStats instead of dropping it
  /// silently. In-memory sources have nothing to skip.
  virtual std::size_t skippedRecords() const { return 0; }
};

/// Replays a vector of records. Verifies time ordering on construction.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records);

  std::optional<Record> next() override;

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

/// Streams records from a CSV file with rows "<category-path>,<timestamp>".
/// Category paths are resolved against the given hierarchy; unknown paths
/// are counted and skipped (operational traces contain junk rows).
class CsvSource final : public RecordSource {
 public:
  CsvSource(std::string path, const Hierarchy& hierarchy);
  ~CsvSource() override;

  std::optional<Record> next() override;

  std::size_t skippedRecords() const override { return skipped_; }
  std::size_t skippedRows() const { return skipped_; }  // legacy name

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t skipped_ = 0;
};

/// Writes records as CSV ("<category-path>,<timestamp>") for interchange.
void writeRecordsCsv(const std::string& path, const Hierarchy& hierarchy,
                     const std::vector<Record>& records);

}  // namespace tiresias
