#include "stream/source.h"

#include <fstream>

#include "common/csv.h"
#include "common/expect.h"

namespace tiresias {

VectorSource::VectorSource(std::vector<Record> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i) {
    TIRESIAS_EXPECT(records_[i - 1].time <= records_[i].time,
                    "VectorSource requires time-ordered records");
  }
}

std::optional<Record> VectorSource::next() {
  if (pos_ >= records_.size()) return std::nullopt;
  return records_[pos_++];
}

struct CsvSource::Impl {
  std::ifstream in;
  const Hierarchy& hierarchy;

  Impl(const std::string& path, const Hierarchy& h) : in(path), hierarchy(h) {
    TIRESIAS_EXPECT(static_cast<bool>(in), "cannot open trace file");
  }
};

CsvSource::CsvSource(std::string path, const Hierarchy& hierarchy)
    : impl_(std::make_unique<Impl>(path, hierarchy)) {}

CsvSource::~CsvSource() = default;

std::optional<Record> CsvSource::next() {
  std::string line;
  while (std::getline(impl_->in, line)) {
    if (line.empty()) continue;
    const auto fields = csvSplit(line);
    if (fields.size() != 2) {
      ++skipped_;
      continue;
    }
    const NodeId node = impl_->hierarchy.find(fields[0]);
    if (node == kInvalidNode) {
      ++skipped_;
      continue;
    }
    char* end = nullptr;
    const long long t = std::strtoll(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0') {
      ++skipped_;
      continue;
    }
    return Record{node, static_cast<Timestamp>(t)};
  }
  return std::nullopt;
}

void writeRecordsCsv(const std::string& path, const Hierarchy& hierarchy,
                     const std::vector<Record>& records) {
  std::ofstream out(path);
  TIRESIAS_EXPECT(static_cast<bool>(out), "cannot open output trace file");
  CsvWriter writer(out);
  for (const auto& r : records) {
    writer.row({hierarchy.path(r.category), std::to_string(r.time)});
  }
}

}  // namespace tiresias
