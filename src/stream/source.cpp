#include "stream/source.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_map>

#include "common/csv.h"
#include "common/expect.h"

namespace tiresias {

std::size_t RecordSource::nextBatch(std::vector<Record>& out,
                                    std::size_t max) {
  out.clear();
  while (out.size() < max) {
    auto r = next();
    if (!r) break;
    out.push_back(*r);
  }
  return out.size();
}

VectorSource::VectorSource(std::vector<Record> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i) {
    TIRESIAS_EXPECT(records_[i - 1].time <= records_[i].time,
                    "VectorSource requires time-ordered records");
  }
}

std::optional<Record> VectorSource::next() {
  if (pos_ >= records_.size()) return std::nullopt;
  return records_[pos_++];
}

std::size_t VectorSource::nextBatch(std::vector<Record>& out,
                                    std::size_t max) {
  out.clear();
  const std::size_t take = std::min(max, records_.size() - pos_);
  out.insert(out.end(), records_.begin() + pos_,
             records_.begin() + pos_ + take);
  pos_ += take;
  return take;
}

NodeId PathCache::resolve(std::string_view rawPath) {
  const auto it = map_.find(rawPath);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  const NodeId node = hierarchy_.find(rawPath);
  if (map_.size() < kCap) {
    map_.emplace(std::string(rawPath), node);
  }
  return node;
}

struct CsvSource::Impl {
  std::ifstream in;
  /// Chunked file reader shared by both pull paths (so they can be mixed
  /// on one source): lines are string_views into the read buffer, copied
  /// into `spill` only when they straddle a chunk boundary.
  std::vector<char> buf;
  std::size_t bufPos = 0;
  std::size_t bufLen = 0;
  std::string spill;
  std::string lineCopy;  // next()'s owned copy for csvSplit
  PathCache pathCache;

  Impl(const std::string& path, const Hierarchy& h)
      : in(path), buf(std::size_t{64} << 10), pathCache(h) {
    TIRESIAS_EXPECT(static_cast<bool>(in), "cannot open trace file");
  }

  bool fill() {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    bufLen = static_cast<std::size_t>(in.gcount());
    bufPos = 0;
    return bufLen > 0;
  }

  /// Next line without its '\n', like std::getline (a file not ending in
  /// a newline still yields its last line). False at end of file.
  bool readLine(std::string_view& out) {
    bool inSpill = false;
    for (;;) {
      if (bufPos >= bufLen) {
        if (!fill()) {
          if (inSpill) {
            out = spill;
            return true;
          }
          return false;
        }
      }
      const char* start = buf.data() + bufPos;
      const void* nl = std::memchr(start, '\n', bufLen - bufPos);
      if (nl != nullptr) {
        const std::size_t n =
            static_cast<std::size_t>(static_cast<const char*>(nl) - start);
        bufPos += n + 1;
        if (!inSpill) {
          out = std::string_view(start, n);
        } else {
          spill.append(start, n);
          out = spill;
        }
        return true;
      }
      if (!inSpill) {
        spill.clear();
        inSpill = true;
      }
      spill.append(start, bufLen - bufPos);
      bufPos = bufLen;
    }
  }
};

CsvSource::CsvSource(std::string path, const Hierarchy& hierarchy)
    : impl_(std::make_unique<Impl>(path, hierarchy)) {}

CsvSource::~CsvSource() = default;

std::size_t CsvSource::pathCacheSize() const {
  return impl_->pathCache.size();
}

std::size_t CsvSource::pathCacheHits() const {
  return impl_->pathCache.hits();
}

std::optional<Record> CsvSource::next() {
  std::string_view lineView;
  while (impl_->readLine(lineView)) {
    if (lineView.empty()) continue;
    const std::string& line = impl_->lineCopy.assign(lineView);
    const auto fields = csvSplit(line);
    if (fields.size() != 2) {
      ++skipped_;
      continue;
    }
    // Resolve through the shared path cache (not a direct hierarchy
    // walk): next() and nextBatch() must pay the same per-record cost on
    // repeated categories, and mixing the pull paths on one source must
    // keep warming one cache.
    const NodeId node = impl_->pathCache.resolve(fields[0]);
    if (node == kInvalidNode) {
      ++skipped_;
      continue;
    }
    char* end = nullptr;
    const long long t = std::strtoll(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0') {
      ++skipped_;
      continue;
    }
    return Record{node, static_cast<Timestamp>(t)};
  }
  return std::nullopt;
}

namespace {

/// strtoll-equivalent full-field parse for the batched fast path:
/// from_chars covers the common "[-]digits" case without needing a
/// NUL-terminated copy; every other shape (leading spaces, '+',
/// out-of-range clamping, trailing junk, embedded NULs) falls back to
/// strtoll on a copy so accept/skip decisions match next() bit for bit.
bool parseTimeField(std::string_view field, Timestamp& t) {
  std::int64_t value = 0;
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec == std::errc() && ptr == last) {
    t = value;
    return true;
  }
  const std::string copy(field);
  char* end = nullptr;
  const long long parsed = std::strtoll(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') return false;
  t = static_cast<Timestamp>(parsed);
  return true;
}

}  // namespace

bool parseCsvTraceRow(std::string_view line,
                      std::vector<std::string>& quotedScratch,
                      std::string_view& path, Timestamp& time) {
  std::string_view pathField, timeField;
  // Two memchr-backed single-char scans beat one find_first_of here
  // (libstdc++'s two-needle search walks the line byte by byte).
  if (line.find('"') == std::string_view::npos &&
      line.find('\r') == std::string_view::npos) {
    // Plain row: exactly one comma splits path from timestamp, matching
    // what csvSplit yields for quote-free lines (csvSplit also strips
    // '\r', so CRLF rows go through it too).
    const std::size_t comma = line.find(',');
    if (comma == std::string_view::npos ||
        line.find(',', comma + 1) != std::string_view::npos) {
      return false;
    }
    pathField = line.substr(0, comma);
    timeField = line.substr(comma + 1);
  } else {
    quotedScratch = csvSplit(std::string(line));
    if (quotedScratch.size() != 2) return false;
    pathField = quotedScratch[0];
    timeField = quotedScratch[1];
  }
  Timestamp t = 0;
  if (!parseTimeField(timeField, t)) return false;
  path = pathField;
  time = t;
  return true;
}

std::size_t CsvSource::nextBatch(std::vector<Record>& out, std::size_t max) {
  out.clear();
  Impl& im = *impl_;
  std::string_view line;
  std::vector<std::string> quoted;  // slow-path storage, rarely used
  while (out.size() < max && im.readLine(line)) {
    if (line.empty()) continue;
    std::string_view pathField;
    Timestamp t = 0;
    if (!parseCsvTraceRow(line, quoted, pathField, t)) {
      ++skipped_;
      continue;
    }
    const NodeId node = im.pathCache.resolve(pathField);
    if (node == kInvalidNode) {
      ++skipped_;
      continue;
    }
    out.push_back(Record{node, t});
  }
  return out.size();
}

void writeRecordsCsv(const std::string& path, const Hierarchy& hierarchy,
                     const std::vector<Record>& records) {
  std::ofstream out(path);
  TIRESIAS_EXPECT(static_cast<bool>(out), "cannot open output trace file");
  CsvWriter writer(out);
  for (const auto& r : records) {
    writer.row({hierarchy.path(r.category), std::to_string(r.time)});
  }
}

}  // namespace tiresias
