// StreamRouter — one accept loop that routes incoming ingest connections
// to the right SocketSource slot.
//
// PR 9's serving surface had K sources racing to accept from one shared
// listener, which made stream identity *positional*: whichever source won
// the race became that client's stream. That is fine for one-shot feeds
// but fatally wrong for reconnects — a client that drops and dials again
// would land on an arbitrary fresh slot. The router fixes identity:
//
//   - one background thread accepts every connection and reads just
//     enough of the handshake to route it (at most the 8 sniff bytes,
//     plus name + token for v2);
//   - v2 connections carrying a stream name go to that name's slot — the
//     same slot on every reconnect, so the SocketSource behind it can
//     resume the logical stream;
//   - v1 binary and CSV connections go to a shared first-come FIFO that
//     anonymous slots (`--net-streams K`, the PR 9 behavior) drain;
//   - everything the router consumed is handed to the source as a
//     pre-read prefix, so the source's own negotiation logic runs
//     unchanged — the router routes, it does not parse tables.
//
// Graceful degradation hooks live here too, because accept time is the
// cheapest place to refuse work: a shed predicate (the CLI wires it to
// the engine's queue lag against --shed-watermark) closes connections
// before reading a byte, and structurally unroutable connections
// (unknown stream name, handshake timeout, anonymous overflow) are
// counted and closed instead of wedging a slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/tcp.h"
#include "stream/socket_source.h"

namespace tiresias {

class StreamRouter {
 public:
  struct Options {
    /// Pinned wire format (kCsv skips the sniff entirely).
    SocketSourceOptions::Format format = SocketSourceOptions::Format::kAuto;
    /// Deadline for the routing prefix of a handshake. A peer that
    /// connects and stalls before identifying itself is dropped.
    int handshakeTimeoutMs = 10'000;
    /// Checked once per accepted connection, before any read; true means
    /// the server is overloaded and the connection is closed on the spot
    /// (counted in shedConnections()). Called from the router thread.
    std::function<bool()> shedPredicate;
  };

  /// One routed connection: the socket plus whatever handshake prefix the
  /// router consumed to route it (the source replays `head` before
  /// reading the socket, so no byte is lost).
  struct Routed {
    net::TcpConn conn;
    std::vector<std::uint8_t> head;
    bool headEof = false;  // EOF already seen while sniffing
  };

  StreamRouter(std::shared_ptr<net::TcpListener> listener, Options options);
  ~StreamRouter();

  StreamRouter(const StreamRouter&) = delete;
  StreamRouter& operator=(const StreamRouter&) = delete;

  /// Register slots before start(). A named slot receives every v2
  /// connection carrying `name` (newest wins if one is already waiting);
  /// anonymous slots share one first-come FIFO of v1/CSV connections.
  std::size_t addNamedSlot(std::string name);
  std::size_t addAnonymousSlot();

  void start();
  /// Stops the accept thread and wakes every await() with "no connection".
  void stop();

  /// Block until a connection is routed to `slot` (or the shared FIFO for
  /// anonymous slots), the timeout passes, or the router stops.
  std::optional<Routed> await(std::size_t slot, int timeoutMs);

  std::size_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the shed predicate before any read.
  std::size_t shedConnections() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Connections that could not be routed: unknown stream name, handshake
  /// timeout/corruption, or no anonymous capacity.
  std::size_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::string name;  // empty = anonymous (drains the shared FIFO)
    std::deque<Routed> queue;
  };

  void routeLoop();
  void routeOne(net::TcpConn conn);
  void deliverAnonymous(Routed routed);

  std::shared_ptr<net::TcpListener> listener_;
  Options opt_;
  // deque: Slot is move-only (its queue holds sockets) and growth must
  // not relocate existing elements.
  std::deque<Slot> slots_;
  std::unordered_map<std::string, std::size_t> byName_;
  std::deque<Routed> anonymous_;
  std::size_t anonymousSlots_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> rejected_{0};
};

}  // namespace tiresias
