#include "stream/socket_source.h"

#include <cstring>
#include <limits>

#include "persist/snapshot.h"

namespace tiresias {

namespace {

using net::IoStatus;
using persist::Deserializer;
using persist::Serializer;
using persist::SnapshotError;

constexpr std::size_t kRecordBytes = 12;  // u32 fileId + i64 timestamp
constexpr std::size_t kCsvReadChunk = std::size_t{64} << 10;

// Byte-assembly little-endian codecs (same idiom as binary_source.cpp:
// single moves on LE targets, correct everywhere).
std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(le32(p)) |
         (static_cast<std::uint64_t>(le32(p + 4)) << 32);
}

void putLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void putLe64(std::uint8_t* p, std::uint64_t v) {
  putLe32(p, static_cast<std::uint32_t>(v));
  putLe32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

struct SocketSource::Impl {
  enum class State : std::uint8_t { kStart, kBinary, kCsv, kDone };

  std::shared_ptr<net::TcpListener> listener;  // null when conn was adopted
  net::TcpConn conn;
  const Hierarchy& hierarchy;
  SocketSourceOptions opt;

  State state = State::kStart;
  std::size_t protocolErrors = 0;
  std::size_t unresolved = 0;
  /// Monotonicity guard: the batcher requires non-decreasing time, and a
  /// misbehaving client must not be able to abort the server, so records
  /// that run backwards are skipped here.
  Timestamp lastTime = std::numeric_limits<Timestamp>::min();

  // Binary mode: fileId → NodeId from the handshake table; frame staging.
  std::vector<NodeId> fileIdToNode;
  std::vector<std::uint8_t> frame;

  // CSV mode: undelivered bytes + scan cursor, EOF latch, shared-cache
  // resolution (CsvSource parity).
  std::string csvBuf;
  std::size_t csvPos = 0;
  bool csvEof = false;
  PathCache pathCache;
  std::vector<std::string> quotedScratch;
  std::vector<char> readBuf = std::vector<char>(kCsvReadChunk);

  /// Decoded records awaiting delivery through next()/nextBatch().
  std::vector<Record> pending;
  std::size_t pendingPos = 0;

  Impl(std::shared_ptr<net::TcpListener> l, net::TcpConn c,
       const Hierarchy& h, SocketSourceOptions o)
      : listener(std::move(l)), conn(std::move(c)), hierarchy(h), opt(o),
        pathCache(h) {
    net::ignoreSigpipe();
  }

  /// Structural failure: count it, drop the connection, end the stream.
  void fail() {
    ++protocolErrors;
    conn.close();
    state = State::kDone;
  }

  void endClean() {
    conn.close();
    state = State::kDone;
  }

  /// Ensure pending has undelivered records. False only at end of stream.
  bool fillPending(std::size_t& skipped) {
    for (;;) {
      if (pendingPos < pending.size()) return true;
      if (state == State::kDone) return false;
      if (state == State::kStart) {
        negotiate();
        continue;
      }
      pending.clear();
      pendingPos = 0;
      if (state == State::kBinary) {
        pullBinaryFrame(skipped);
      } else {
        pullCsv(skipped);
      }
    }
  }

  /// Accept (when listening) and detect the wire format. Leaves state at
  /// kBinary/kCsv/kDone.
  void negotiate() {
    if (!conn.valid()) {
      if (listener == nullptr || !listener->valid()) {
        fail();
        return;
      }
      conn = listener->accept(opt.readTimeoutMs);
      if (!conn.valid()) {
        fail();  // nobody connected within the window
        return;
      }
    }
    if (opt.format == SocketSourceOptions::Format::kCsv) {
      state = State::kCsv;
      return;
    }
    // Sniff exactly four bytes (kAuto and kBinary both need the magic;
    // they differ only in what a mismatch means).
    std::uint8_t head[4];
    std::size_t have = 0;
    while (have < 4) {
      std::size_t got = 0;
      const IoStatus st =
          conn.readSome(head + have, 4 - have, got, opt.readTimeoutMs);
      if (st == IoStatus::kOk) {
        have += got;
        continue;
      }
      if (st == IoStatus::kEof) break;
      fail();  // timeout or socket error before the stream even started
      return;
    }
    if (have == 0) {
      endClean();  // connected and closed without a byte: empty stream
      return;
    }
    if (have == 4 && le32(head) == kSocketStreamMagic) {
      binaryHandshake();
      return;
    }
    if (opt.format == SocketSourceOptions::Format::kBinary) {
      fail();  // binary required but the magic is wrong/truncated
      return;
    }
    // Auto + no magic: those bytes are the first CSV payload.
    csvBuf.assign(reinterpret_cast<const char*>(head), have);
    csvEof = have < 4;  // EOF already seen mid-sniff
    state = State::kCsv;
  }

  /// Post-magic binary handshake: version, table length, path table.
  void binaryHandshake() {
    std::uint8_t fixed[12];  // u32 version + u64 tableBytes
    std::size_t got = 0;
    if (conn.readExact(fixed, sizeof(fixed), got, opt.readTimeoutMs) !=
        IoStatus::kOk) {
      fail();
      return;
    }
    if (le32(fixed) != kSocketStreamVersion) {
      fail();
      return;
    }
    const std::uint64_t tableBytes = le64(fixed + 4);
    if (tableBytes > kSocketMaxTableBytes) {
      fail();
      return;
    }
    std::vector<std::uint8_t> table(static_cast<std::size_t>(tableBytes));
    if (conn.readExact(table.data(), table.size(), got, opt.readTimeoutMs) !=
        IoStatus::kOk) {
      fail();
      return;
    }
    try {
      Deserializer des(table);
      const std::size_t paths = des.count(sizeof(std::uint64_t));
      fileIdToNode.clear();
      fileIdToNode.reserve(paths);
      for (std::size_t i = 0; i < paths; ++i) {
        const NodeId node = hierarchy.find(des.str());
        if (node == kInvalidNode) ++unresolved;
        fileIdToNode.push_back(node);
      }
      Deserializer::require(des.atEnd(),
                            "socket handshake: trailing table bytes");
    } catch (const SnapshotError&) {
      fail();  // table framing corrupt — connection-level, never a throw
      return;
    }
    state = State::kBinary;
  }

  /// Read and decode one record frame into pending. Sets kDone at the
  /// end-of-stream marker, a clean EOF at a frame boundary, or any
  /// structural failure.
  void pullBinaryFrame(std::size_t& skipped) {
    std::uint8_t prefix[4];
    std::size_t got = 0;
    const IoStatus st =
        conn.readExact(prefix, sizeof(prefix), got, opt.readTimeoutMs);
    if (st == IoStatus::kEof) {
      endClean();  // frame boundary is a legal end of stream
      return;
    }
    if (st != IoStatus::kOk) {
      fail();  // timeout, reset, or EOF inside the prefix
      return;
    }
    const std::uint32_t count = le32(prefix);
    if (count == 0) {
      endClean();  // explicit end-of-stream marker
      return;
    }
    if (count > kSocketMaxFrameRecords) {
      fail();
      return;
    }
    frame.resize(static_cast<std::size_t>(count) * kRecordBytes);
    if (conn.readExact(frame.data(), frame.size(), got, opt.readTimeoutMs) !=
        IoStatus::kOk) {
      fail();  // truncated frame (peer died or stalled mid-frame)
      return;
    }
    const std::uint8_t* rec = frame.data();
    const std::size_t tableSize = fileIdToNode.size();
    for (std::uint32_t i = 0; i < count; ++i, rec += kRecordBytes) {
      const std::uint32_t fileId = le32(rec);
      const auto time = static_cast<Timestamp>(le64(rec + 4));
      if (fileId >= tableSize) {
        // A file-id the handshake never announced means the framing is
        // desynchronized; records decoded before it are still delivered.
        fail();
        return;
      }
      const NodeId node = fileIdToNode[fileId];
      if (node == kInvalidNode || time < lastTime) {
        ++skipped;
        continue;
      }
      lastTime = time;
      pending.push_back(Record{node, time});
    }
  }

  void handleCsvLine(std::string_view line, std::size_t& skipped) {
    if (line.empty()) return;
    std::string_view pathField;
    Timestamp t = 0;
    if (!parseCsvTraceRow(line, quotedScratch, pathField, t)) {
      ++skipped;
      return;
    }
    const NodeId node = pathCache.resolve(pathField);
    if (node == kInvalidNode || t < lastTime) {
      ++skipped;
      return;
    }
    lastTime = t;
    pending.push_back(Record{node, t});
  }

  /// Consume buffered CSV lines, reading more from the socket as needed,
  /// until at least one record is pending or the stream ends.
  void pullCsv(std::size_t& skipped) {
    for (;;) {
      for (;;) {
        const std::size_t nl = csvBuf.find('\n', csvPos);
        if (nl == std::string::npos) break;
        handleCsvLine(
            std::string_view(csvBuf).substr(csvPos, nl - csvPos), skipped);
        csvPos = nl + 1;
      }
      csvBuf.erase(0, csvPos);
      csvPos = 0;
      if (!pending.empty()) return;
      if (csvEof) {
        // A final line without a trailing newline still counts, like
        // CsvSource's file reader.
        if (!csvBuf.empty()) {
          handleCsvLine(csvBuf, skipped);
          csvBuf.clear();
        }
        endClean();
        return;
      }
      if (csvBuf.size() > kSocketMaxCsvLineBytes) {
        fail();  // a megabyte with no newline is not a CSV row
        return;
      }
      std::size_t got = 0;
      const IoStatus st = conn.readSome(readBuf.data(), readBuf.size(), got,
                                        opt.readTimeoutMs);
      if (st == IoStatus::kOk) {
        csvBuf.append(readBuf.data(), got);
      } else if (st == IoStatus::kEof) {
        csvEof = true;
      } else {
        fail();  // idle past the timeout, or the socket errored
        return;
      }
    }
  }
};

SocketSource::SocketSource(std::shared_ptr<net::TcpListener> listener,
                           const Hierarchy& hierarchy,
                           SocketSourceOptions options)
    : impl_(std::make_unique<Impl>(std::move(listener), net::TcpConn(),
                                   hierarchy, options)) {}

SocketSource::SocketSource(net::TcpConn conn, const Hierarchy& hierarchy,
                           SocketSourceOptions options)
    : impl_(std::make_unique<Impl>(nullptr, std::move(conn), hierarchy,
                                   options)) {}

SocketSource::~SocketSource() = default;

std::size_t SocketSource::protocolErrors() const {
  return impl_->protocolErrors;
}

std::size_t SocketSource::unresolvedPaths() const {
  return impl_->unresolved;
}

std::optional<Record> SocketSource::next() {
  Impl& im = *impl_;
  if (!im.fillPending(skipped_)) return std::nullopt;
  return im.pending[im.pendingPos++];
}

std::size_t SocketSource::nextBatch(std::vector<Record>& out,
                                    std::size_t max) {
  out.clear();
  Impl& im = *impl_;
  while (out.size() < max) {
    if (!im.fillPending(skipped_)) break;
    const std::size_t take =
        std::min(max - out.size(), im.pending.size() - im.pendingPos);
    out.insert(out.end(), im.pending.begin() + im.pendingPos,
               im.pending.begin() + im.pendingPos + take);
    im.pendingPos += take;
  }
  return out.size();
}

std::vector<std::uint8_t> encodeSocketHandshake(
    const std::vector<std::string>& paths) {
  Serializer table;
  table.u64(paths.size());
  for (const std::string& p : paths) table.str(p);
  std::vector<std::uint8_t> out(16 + table.size());
  putLe32(out.data(), kSocketStreamMagic);
  putLe32(out.data() + 4, kSocketStreamVersion);
  putLe64(out.data() + 8, table.size());
  std::memcpy(out.data() + 16, table.data().data(), table.size());
  return out;
}

void appendSocketFrame(std::vector<std::uint8_t>& out, const Record* records,
                       std::size_t count) {
  std::uint8_t scratch[kRecordBytes];
  putLe32(scratch, static_cast<std::uint32_t>(count));
  out.insert(out.end(), scratch, scratch + 4);
  for (std::size_t i = 0; i < count; ++i) {
    putLe32(scratch, records[i].category);
    putLe64(scratch + 4, static_cast<std::uint64_t>(records[i].time));
    out.insert(out.end(), scratch, scratch + kRecordBytes);
  }
}

void appendSocketEndOfStream(std::vector<std::uint8_t>& out) {
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  out.insert(out.end(), zero, zero + 4);
}

}  // namespace tiresias
