#include "stream/socket_source.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "common/timeutil.h"
#include "persist/snapshot.h"
#include "stream/stream_router.h"

namespace tiresias {

namespace {

using net::IoStatus;
using persist::Deserializer;
using persist::Serializer;
using persist::SnapshotError;

constexpr std::size_t kRecordBytes = 12;  // u32 fileId + i64 timestamp
constexpr std::size_t kCsvReadChunk = std::size_t{64} << 10;

using Clock = std::chrono::steady_clock;

int elapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

// Byte-assembly little-endian codecs (same idiom as binary_source.cpp:
// single moves on LE targets, correct everywhere).
std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(le32(p)) |
         (static_cast<std::uint64_t>(le32(p + 4)) << 32);
}

void putLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void putLe64(std::uint8_t* p, std::uint64_t v) {
  putLe32(p, static_cast<std::uint32_t>(v));
  putLe32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

struct SocketSource::Impl {
  enum class State : std::uint8_t { kStart, kBinary, kCsv, kDone };
  /// One fillPending() outcome: records are ready, the stream ended, or
  /// the bounded idle window expired while the stream merely waits
  /// (between connections or frames — see SocketSourceOptions::pullIdleMs).
  enum class Pull : std::uint8_t { kData, kIdle, kDone };

  std::shared_ptr<net::TcpListener> listener;  // null when conn was adopted
  std::shared_ptr<StreamRouter> router;        // null unless routed
  std::size_t slot = 0;
  net::TcpConn conn;
  const Hierarchy& hierarchy;
  SocketSourceOptions opt;

  State state = State::kStart;
  std::size_t protocolErrors = 0;
  std::size_t unresolved = 0;
  /// Conn-scoped failures so far, against opt.protocolErrorBudget.
  std::size_t connFailures = 0;
  /// Monotonicity guard: the batcher requires non-decreasing time, and a
  /// misbehaving client must not be able to abort the server, so records
  /// that run backwards are skipped here.
  Timestamp lastTime = std::numeric_limits<Timestamp>::min();

  // Handshake prefix the router (or a reconnect reset) left for us to
  // replay before reading the socket.
  std::vector<std::uint8_t> preread;
  std::size_t prereadPos = 0;
  bool prereadEof = false;
  bool hadConn = false;  // a later accept is a *re*connect

  // Bounded-idle bookkeeping. A pull blocks at most pullIdleMs per call
  // (pullDeadline); idleAccumMs tracks *contiguous* idleness across calls
  // — any arrival (a connection, a byte) resets it, and once it passes
  // readTimeoutMs the stream gives up exactly where an unbounded wait
  // would have timed out.
  Clock::time_point pullDeadline{};
  int idleAccumMs = 0;

  // Resume state: records of the current (possibly incomplete) timeunit
  // are staged and only released downstream when the next unit opens, so
  // committedTime is always a unit boundary the client can replay from.
  std::vector<Record> staged;
  TimeUnit stagedUnit = 0;
  Timestamp committedTime = kSocketNoCommit;
  std::size_t connSkipped = 0;  // junk this connection, vs junk budget
  std::atomic<std::size_t> reconnectCount{0};
  std::atomic<std::size_t> resumeCount{0};

  // Binary mode: fileId → NodeId from the handshake table; frame staging.
  std::vector<NodeId> fileIdToNode;
  std::vector<std::uint8_t> frame;

  // CSV mode: undelivered bytes + scan cursor, EOF latch, shared-cache
  // resolution (CsvSource parity).
  std::string csvBuf;
  std::size_t csvPos = 0;
  bool csvEof = false;
  PathCache pathCache;
  std::vector<std::string> quotedScratch;
  std::vector<char> readBuf = std::vector<char>(kCsvReadChunk);

  /// Decoded records awaiting delivery through next()/nextBatch().
  std::vector<Record> pending;
  std::size_t pendingPos = 0;

  Impl(std::shared_ptr<net::TcpListener> l, std::shared_ptr<StreamRouter> r,
       std::size_t routerSlot, net::TcpConn c, const Hierarchy& h,
       SocketSourceOptions o)
      : listener(std::move(l)), router(std::move(r)), slot(routerSlot),
        conn(std::move(c)), hierarchy(h), opt(std::move(o)), pathCache(h) {
    net::ignoreSigpipe();
  }

  /// A named stream survives lost connections; a positional one is its
  /// connection.
  bool resumable() const { return !opt.streamName.empty(); }
  /// Unit-granular commit staging (needs the pipeline delta).
  bool staging() const { return resumable() && opt.unitDelta > 0; }

  // ---- bounded-idle waits ----

  bool idlePatienceExhausted() const {
    return idleAccumMs >= opt.readTimeoutMs;
  }

  /// Milliseconds a single idle-type wait (accept, await, first byte of
  /// the next protocol element) may block right now: the remaining pull
  /// budget, capped by the stream's remaining patience.
  int idleWaitMs() const {
    int budget = std::max(opt.readTimeoutMs - idleAccumMs, 1);
    if (opt.pullIdleMs > 0) {
      const auto rem = std::chrono::duration_cast<std::chrono::milliseconds>(
                           pullDeadline - Clock::now())
                           .count();
      budget = std::min(budget, static_cast<int>(std::max<long long>(rem, 1)));
    }
    return budget;
  }

  // ---- reads: drain the pre-read prefix, then the socket ----

  /// Bounded wait for the first byte of the next protocol element. Bytes
  /// reset the idle clock; a timeout charges it. On kTimeout the caller
  /// checks idlePatienceExhausted(): exhausted means the old full-timeout
  /// expiry, otherwise it simply returns so fillPending() can yield.
  IoStatus readIdleW(void* dst, std::size_t n, std::size_t& got) {
    if (prereadPos < preread.size() || prereadEof) {
      return readSomeW(dst, n, got);
    }
    const auto t0 = Clock::now();
    const IoStatus st = conn.readSome(dst, n, got, idleWaitMs());
    if (st == IoStatus::kOk) {
      idleAccumMs = 0;
    } else if (st == IoStatus::kTimeout) {
      idleAccumMs += std::max(elapsedMs(t0), 1);
    }
    return st;
  }

  IoStatus readSomeW(void* dst, std::size_t n, std::size_t& got) {
    if (prereadPos < preread.size()) {
      got = std::min(n, preread.size() - prereadPos);
      std::memcpy(dst, preread.data() + prereadPos, got);
      prereadPos += got;
      return IoStatus::kOk;
    }
    if (prereadEof) {
      got = 0;
      return IoStatus::kEof;
    }
    return conn.readSome(dst, n, got, opt.readTimeoutMs);
  }

  /// readExact over the wrapped reader: kEof only before the first byte,
  /// EOF mid-buffer degrades to kError (TcpConn::readExact semantics).
  IoStatus readExactW(void* dst, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(dst);
    std::size_t have = 0;
    while (have < n) {
      std::size_t got = 0;
      const IoStatus st = readSomeW(p + have, n - have, got);
      if (st == IoStatus::kOk) {
        have += got;
        continue;
      }
      if (st == IoStatus::kEof && have == 0) return IoStatus::kEof;
      return st == IoStatus::kEof ? IoStatus::kError : st;
    }
    return IoStatus::kOk;
  }

  // ---- failure / lifecycle ----

  /// Unrecoverable failure (accept window elapsed, budget exhausted):
  /// count it, drop the connection, end the stream.
  void fail() {
    ++protocolErrors;
    conn.close();
    state = State::kDone;
  }

  /// Connection-scoped failure: a resumable stream with budget left goes
  /// back to waiting for its client to reconnect; anything else ends the
  /// stream like fail().
  void failConn() {
    if (resumable() && connFailures < opt.protocolErrorBudget) {
      ++connFailures;
      ++protocolErrors;
      resetForReconnect();
      return;
    }
    fail();
  }

  /// Drop every per-connection artifact and await the next connection.
  /// The staged partial unit is discarded — the reconnecting client
  /// replays it in full from committedTime, so nothing is duplicated or
  /// lost.
  void resetForReconnect() {
    conn.close();
    state = State::kStart;
    idleAccumMs = 0;  // the wait for the reconnect gets fresh patience
    staged.clear();
    lastTime = committedTime;
    csvBuf.clear();
    csvPos = 0;
    csvEof = false;
    preread.clear();
    prereadPos = 0;
    prereadEof = false;
    fileIdToNode.clear();
    connSkipped = 0;
  }

  void endClean() {
    // The client finished: release any staged partial unit downstream.
    flushStaged();
    conn.close();
    state = State::kDone;
  }

  // ---- resume staging ----

  void flushStaged() {
    pending.insert(pending.end(), staged.begin(), staged.end());
    staged.clear();
  }

  /// Deliver one accepted record — directly, or through the unit-commit
  /// staging buffer when the stream is resumable.
  void emit(const Record& r) {
    if (!staging()) {
      pending.push_back(r);
      return;
    }
    const TimeUnit u = timeUnitOf(r.time, opt.unitDelta);
    if (!staged.empty() && u != stagedUnit) {
      // r opens a new unit, which completes the staged one: commit it.
      // Records are monotone, so everything before unitStart(u) has now
      // been seen — that boundary is the new replay point.
      flushStaged();
      committedTime = unitStart(u, opt.unitDelta);
    }
    if (staged.empty()) stagedUnit = u;
    staged.push_back(r);
  }

  /// One record-level skip, honoring the per-connection junk budget.
  /// Returns false when the budget tripped (the connection is gone).
  bool noteJunk(std::size_t& skipped) {
    ++skipped;
    if (opt.junkBudgetPerConn > 0 && ++connSkipped > opt.junkBudgetPerConn) {
      failConn();  // garbage at volume is structural, not noise
      return false;
    }
    return true;
  }

  /// Ensure pending has undelivered records. kDone only at end of
  /// stream; kIdle when the bounded pull window expired first (the stream
  /// is alive but has nothing yet — reconnect churn included, so a
  /// caller is never wedged by a peer that keeps connecting and dying).
  Pull fillPending(std::size_t& skipped) {
    const auto start = Clock::now();
    pullDeadline = start + std::chrono::milliseconds(
                               opt.pullIdleMs > 0 ? opt.pullIdleMs : 0);
    for (;;) {
      if (pendingPos < pending.size()) return Pull::kData;
      if (state == State::kDone) return Pull::kDone;
      if (opt.pullIdleMs > 0 && elapsedMs(start) >= opt.pullIdleMs) {
        return Pull::kIdle;
      }
      pending.clear();
      pendingPos = 0;
      if (state == State::kStart) {
        negotiate();
        continue;
      }
      if (state == State::kBinary) {
        pullBinaryFrame(skipped);
      } else {
        pullCsv(skipped);
      }
    }
  }

  /// Accept (when listening/routed) and detect the wire format. Leaves
  /// state at kBinary/kCsv/kDone — or back at kStart after a recoverable
  /// connection failure on a resumable stream.
  void negotiate() {
    if (!conn.valid()) {
      const auto t0 = Clock::now();
      if (router != nullptr) {
        auto routed = router->await(slot, idleWaitMs());
        if (!routed || !routed->conn.valid()) {
          idleAccumMs += std::max(elapsedMs(t0), 1);
          // Nobody (re)connected yet: give up only once the patience the
          // unbounded wait had is spent, otherwise yield to the caller.
          if (idlePatienceExhausted()) fail();
          return;
        }
        conn = std::move(routed->conn);
        preread = std::move(routed->head);
        prereadPos = 0;
        prereadEof = routed->headEof;
      } else if (listener != nullptr && listener->valid()) {
        conn = listener->accept(idleWaitMs());
        if (!conn.valid()) {
          idleAccumMs += std::max(elapsedMs(t0), 1);
          if (idlePatienceExhausted()) fail();
          return;
        }
      } else {
        fail();
        return;
      }
      idleAccumMs = 0;  // a connection arrived
      if (hadConn) reconnectCount.fetch_add(1, std::memory_order_relaxed);
    }
    hadConn = true;
    if (opt.format == SocketSourceOptions::Format::kCsv) {
      state = State::kCsv;
      return;
    }
    // Sniff the full magic + version (eight bytes): kAuto and kBinary
    // both need them, and requiring the *whole* prefix to match is what
    // keeps a CSV path that merely starts with "TSRS" out of the binary
    // lane.
    std::uint8_t head[8];
    std::size_t have = 0;
    while (have < 8) {
      std::size_t got = 0;
      // Before the first byte the connection is merely idle (bounded
      // wait, yielding); once the sniff started, a stall is a protocol
      // failure like any other truncation.
      const IoStatus st = have == 0 ? readIdleW(head, 8, got)
                                    : readSomeW(head + have, 8 - have, got);
      if (st == IoStatus::kOk) {
        have += got;
        continue;
      }
      if (st == IoStatus::kEof) break;
      if (st == IoStatus::kTimeout && have == 0 && !idlePatienceExhausted()) {
        return;  // still kStart with a valid conn: the sniff resumes later
      }
      failConn();  // timeout or socket error before the stream started
      return;
    }
    if (have == 0) {
      endClean();  // connected and closed without a byte: empty stream
      return;
    }
    std::uint32_t version = 0;
    if (have == 8 && le32(head) == kSocketStreamMagic) {
      const std::uint32_t v = le32(head + 4);
      if (v == kSocketStreamVersion || v == kSocketStreamVersion2) {
        version = v;
      }
    }
    if (version != 0) {
      binaryHandshake(version);
      return;
    }
    if (opt.format == SocketSourceOptions::Format::kBinary) {
      failConn();  // binary required but the magic/version is wrong
      return;
    }
    // Auto + no full magic/version match: those bytes are the first CSV
    // payload (any remaining pre-read bytes drain through readSomeW).
    csvBuf.assign(reinterpret_cast<const char*>(head), have);
    csvEof = have < 8;  // EOF already seen mid-sniff
    state = State::kCsv;
  }

  /// Post-sniff binary handshake: (v2: name + resume token,) table
  /// length, path table, (v2: resume reply).
  void binaryHandshake(std::uint32_t version) {
    if (version == kSocketStreamVersion2) {
      std::uint8_t lenBuf[4];
      if (readExactW(lenBuf, sizeof(lenBuf)) != IoStatus::kOk) {
        failConn();
        return;
      }
      const std::uint32_t nameLen = le32(lenBuf);
      if (nameLen == 0 || nameLen > kSocketMaxStreamNameBytes) {
        failConn();
        return;
      }
      std::string peerName(nameLen, '\0');
      if (readExactW(peerName.data(), nameLen) != IoStatus::kOk) {
        failConn();
        return;
      }
      std::uint8_t tokenBuf[8];
      if (readExactW(tokenBuf, sizeof(tokenBuf)) != IoStatus::kOk) {
        failConn();
        return;
      }
      // The token is informational (client-chosen session id); the name
      // is the identity — and on a named slot it must be *our* name (the
      // router guarantees it; direct wiring gets the same check).
      if (!opt.streamName.empty() && peerName != opt.streamName) {
        failConn();
        return;
      }
    }
    std::uint8_t sizeBuf[8];
    if (readExactW(sizeBuf, sizeof(sizeBuf)) != IoStatus::kOk) {
      failConn();
      return;
    }
    const std::uint64_t tableBytes = le64(sizeBuf);
    if (tableBytes > kSocketMaxTableBytes) {
      failConn();
      return;
    }
    std::vector<std::uint8_t> table(static_cast<std::size_t>(tableBytes));
    if (readExactW(table.data(), table.size()) != IoStatus::kOk) {
      failConn();
      return;
    }
    try {
      Deserializer des(table);
      const std::size_t paths = des.count(sizeof(std::uint64_t));
      fileIdToNode.clear();
      fileIdToNode.reserve(paths);
      for (std::size_t i = 0; i < paths; ++i) {
        const NodeId node = hierarchy.find(des.str());
        if (node == kInvalidNode) ++unresolved;
        fileIdToNode.push_back(node);
      }
      Deserializer::require(des.atEnd(),
                            "socket handshake: trailing table bytes");
    } catch (const SnapshotError&) {
      failConn();  // table framing corrupt — connection-level, no throw
      return;
    }
    if (version == kSocketStreamVersion2) {
      // Answer with the replay point before any frame flows, so the
      // client knows which prefix to skip.
      std::uint8_t reply[12];
      putLe32(reply, kSocketResumeOk);
      putLe64(reply + 4, static_cast<std::uint64_t>(committedTime));
      if (!conn.writeAll(reply, sizeof(reply), opt.readTimeoutMs)) {
        failConn();
        return;
      }
      if (committedTime != kSocketNoCommit) {
        resumeCount.fetch_add(1, std::memory_order_relaxed);
      }
    }
    state = State::kBinary;
  }

  /// Read and decode one record frame. Sets kDone at the end-of-stream
  /// marker or a clean EOF (positional streams); a resumable stream
  /// treats every EOS-less connection end as a crash and awaits the
  /// reconnect instead.
  void pullBinaryFrame(std::size_t& skipped) {
    std::uint8_t prefix[4];
    std::size_t have = 0;
    while (have < sizeof(prefix)) {
      std::size_t got = 0;
      // Between frames the stream is just idle (bounded wait, yielding);
      // a stall inside the prefix is truncation.
      const IoStatus st =
          have == 0 ? readIdleW(prefix, sizeof(prefix), got)
                    : readSomeW(prefix + have, sizeof(prefix) - have, got);
      if (st == IoStatus::kOk) {
        have += got;
        continue;
      }
      if (st == IoStatus::kEof && have == 0) {
        if (resumable()) {
          failConn();  // no EOS: presumed crashed, await the reconnect
        } else {
          endClean();  // frame boundary is a legal end of stream
        }
        return;
      }
      if (st == IoStatus::kTimeout && have == 0 && !idlePatienceExhausted()) {
        return;  // no prefix byte consumed: the frame read resumes later
      }
      failConn();  // timeout, reset, or EOF inside the prefix
      return;
    }
    const std::uint32_t count = le32(prefix);
    if (count == 0) {
      endClean();  // explicit end-of-stream marker
      return;
    }
    if (count > kSocketMaxFrameRecords) {
      failConn();
      return;
    }
    frame.resize(static_cast<std::size_t>(count) * kRecordBytes);
    if (readExactW(frame.data(), frame.size()) != IoStatus::kOk) {
      failConn();  // truncated frame (peer died or stalled mid-frame)
      return;
    }
    const std::uint8_t* rec = frame.data();
    const std::size_t tableSize = fileIdToNode.size();
    for (std::uint32_t i = 0; i < count; ++i, rec += kRecordBytes) {
      const std::uint32_t fileId = le32(rec);
      const auto time = static_cast<Timestamp>(le64(rec + 4));
      if (fileId >= tableSize) {
        // A file-id the handshake never announced means the framing is
        // desynchronized; records decoded before it are still delivered.
        failConn();
        return;
      }
      const NodeId node = fileIdToNode[fileId];
      if (node == kInvalidNode || time < lastTime) {
        if (!noteJunk(skipped)) return;
        continue;
      }
      lastTime = time;
      emit(Record{node, time});
    }
  }

  void handleCsvLine(std::string_view line, std::size_t& skipped) {
    if (line.empty() || state == State::kDone) return;
    std::string_view pathField;
    Timestamp t = 0;
    if (!parseCsvTraceRow(line, quotedScratch, pathField, t)) {
      noteJunk(skipped);
      return;
    }
    const NodeId node = pathCache.resolve(pathField);
    if (node == kInvalidNode || t < lastTime) {
      noteJunk(skipped);
      return;
    }
    lastTime = t;
    emit(Record{node, t});
  }

  /// Consume buffered CSV lines, reading more from the socket as needed,
  /// until at least one record is pending or the stream ends.
  void pullCsv(std::size_t& skipped) {
    for (;;) {
      for (;;) {
        const std::size_t nl = csvBuf.find('\n', csvPos);
        if (nl == std::string::npos) break;
        handleCsvLine(
            std::string_view(csvBuf).substr(csvPos, nl - csvPos), skipped);
        if (state != State::kCsv) return;  // junk budget tripped
        csvPos = nl + 1;
      }
      csvBuf.erase(0, csvPos);
      csvPos = 0;
      if (!pending.empty()) return;
      if (csvEof) {
        // A final line without a trailing newline still counts, like
        // CsvSource's file reader.
        if (!csvBuf.empty()) {
          handleCsvLine(csvBuf, skipped);
          csvBuf.clear();
          if (state != State::kCsv) return;
        }
        endClean();
        return;
      }
      if (csvBuf.size() > kSocketMaxCsvLineBytes) {
        failConn();  // a megabyte with no newline is not a CSV row
        return;
      }
      std::size_t got = 0;
      const IoStatus st = readIdleW(readBuf.data(), readBuf.size(), got);
      if (st == IoStatus::kOk) {
        csvBuf.append(readBuf.data(), got);
      } else if (st == IoStatus::kEof) {
        csvEof = true;
      } else if (st == IoStatus::kTimeout && !idlePatienceExhausted()) {
        return;  // between rows: buffered bytes keep, the pull resumes
      } else {
        failConn();  // idle past the timeout, or the socket errored
        return;
      }
    }
  }
};

SocketSource::SocketSource(std::shared_ptr<net::TcpListener> listener,
                           const Hierarchy& hierarchy,
                           SocketSourceOptions options)
    : impl_(std::make_unique<Impl>(std::move(listener), nullptr, 0,
                                   net::TcpConn(), hierarchy,
                                   std::move(options))) {}

SocketSource::SocketSource(net::TcpConn conn, const Hierarchy& hierarchy,
                           SocketSourceOptions options)
    : impl_(std::make_unique<Impl>(nullptr, nullptr, 0, std::move(conn),
                                   hierarchy, std::move(options))) {}

SocketSource::SocketSource(std::shared_ptr<StreamRouter> router,
                           std::size_t slot, const Hierarchy& hierarchy,
                           SocketSourceOptions options)
    : impl_(std::make_unique<Impl>(nullptr, std::move(router), slot,
                                   net::TcpConn(), hierarchy,
                                   std::move(options))) {}

SocketSource::~SocketSource() = default;

std::size_t SocketSource::protocolErrors() const {
  return impl_->protocolErrors;
}

std::size_t SocketSource::unresolvedPaths() const {
  return impl_->unresolved;
}

std::size_t SocketSource::reconnects() const {
  return impl_->reconnectCount.load(std::memory_order_relaxed);
}

std::size_t SocketSource::resumes() const {
  return impl_->resumeCount.load(std::memory_order_relaxed);
}

void SocketSource::noteResumePoint(Timestamp time) {
  Impl& im = *impl_;
  if (time > im.committedTime) {
    im.committedTime = time;
    im.lastTime = std::max(im.lastTime, time);
  }
}

bool SocketSource::idle() const {
  return impl_->state != Impl::State::kDone;
}

std::optional<Record> SocketSource::next() {
  Impl& im = *impl_;
  for (;;) {
    switch (im.fillPending(skipped_)) {
      case Impl::Pull::kData:
        return im.pending[im.pendingPos++];
      case Impl::Pull::kDone:
        return std::nullopt;
      case Impl::Pull::kIdle:
        continue;  // next() keeps the block-until-record semantics
    }
  }
}

std::size_t SocketSource::nextBatch(std::vector<Record>& out,
                                    std::size_t max) {
  out.clear();
  Impl& im = *impl_;
  while (out.size() < max) {
    // Never touch the network while already holding deliverable records:
    // a live stream that hasn't ended must not starve the caller of what
    // it has (the engine's first unit would otherwise wait for a full
    // chunk that an open-ended stream never accumulates).
    if (im.pendingPos >= im.pending.size() && !out.empty()) break;
    const Impl::Pull pull = im.fillPending(skipped_);
    if (pull != Impl::Pull::kData) break;  // stream ended or merely idle
    const std::size_t take =
        std::min(max - out.size(), im.pending.size() - im.pendingPos);
    out.insert(out.end(), im.pending.begin() + im.pendingPos,
               im.pending.begin() + im.pendingPos + take);
    im.pendingPos += take;
  }
  return out.size();
}

std::vector<std::uint8_t> encodeSocketHandshake(
    const std::vector<std::string>& paths) {
  Serializer table;
  table.u64(paths.size());
  for (const std::string& p : paths) table.str(p);
  std::vector<std::uint8_t> out(16 + table.size());
  putLe32(out.data(), kSocketStreamMagic);
  putLe32(out.data() + 4, kSocketStreamVersion);
  putLe64(out.data() + 8, table.size());
  std::memcpy(out.data() + 16, table.data().data(), table.size());
  return out;
}

std::vector<std::uint8_t> encodeSocketHandshakeV2(
    const std::vector<std::string>& paths, const std::string& streamName,
    std::uint64_t resumeToken) {
  Serializer table;
  table.u64(paths.size());
  for (const std::string& p : paths) table.str(p);
  const std::size_t nameLen = streamName.size();
  std::vector<std::uint8_t> out(28 + nameLen + table.size());
  putLe32(out.data(), kSocketStreamMagic);
  putLe32(out.data() + 4, kSocketStreamVersion2);
  putLe32(out.data() + 8, static_cast<std::uint32_t>(nameLen));
  std::memcpy(out.data() + 12, streamName.data(), nameLen);
  putLe64(out.data() + 12 + nameLen, resumeToken);
  putLe64(out.data() + 20 + nameLen, table.size());
  std::memcpy(out.data() + 28 + nameLen, table.data().data(), table.size());
  return out;
}

void appendSocketFrame(std::vector<std::uint8_t>& out, const Record* records,
                       std::size_t count) {
  std::uint8_t scratch[kRecordBytes];
  putLe32(scratch, static_cast<std::uint32_t>(count));
  out.insert(out.end(), scratch, scratch + 4);
  for (std::size_t i = 0; i < count; ++i) {
    putLe32(scratch, records[i].category);
    putLe64(scratch + 4, static_cast<std::uint64_t>(records[i].time));
    out.insert(out.end(), scratch, scratch + kRecordBytes);
  }
}

void appendSocketEndOfStream(std::vector<std::uint8_t>& out) {
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  out.insert(out.end(), zero, zero + 4);
}

bool readSocketResumeReply(net::TcpConn& conn, int timeoutMs,
                           SocketResumeReply& out) {
  std::uint8_t buf[12];
  std::size_t got = 0;
  if (conn.readExact(buf, sizeof(buf), got, timeoutMs) != IoStatus::kOk) {
    return false;
  }
  out.status = le32(buf);
  out.committedTime = static_cast<Timestamp>(le64(buf + 4));
  return true;
}

}  // namespace tiresias
