#include "timeseries/ring.h"

#include <algorithm>

#include "common/expect.h"
#include "common/simd.h"

namespace tiresias {

RingSeries::RingSeries(std::size_t capacity) : buf_(capacity, 0.0) {
  TIRESIAS_EXPECT(capacity > 0, "ring capacity must be positive");
}

void RingSeries::push(double v) {
  TIRESIAS_EXPECT(!buf_.empty(), "ring not initialized");
  if (size_ < buf_.size()) {
    buf_[index(size_)] = v;
    ++size_;
  } else {
    buf_[head_] = v;
    if (++head_ == buf_.size()) head_ = 0;
  }
}

double RingSeries::at(std::size_t i) const {
  TIRESIAS_EXPECT(i < size_, "ring index out of range");
  return buf_[index(i)];
}

double RingSeries::fromLatest(std::size_t j) const {
  TIRESIAS_EXPECT(j < size_, "ring index out of range");
  return buf_[index(size_ - 1 - j)];
}

void RingSeries::set(std::size_t i, double v) {
  TIRESIAS_EXPECT(i < size_, "ring index out of range");
  buf_[index(i)] = v;
}

void RingSeries::scale(double factor) {
  // The live values occupy at most two contiguous runs of the backing
  // array; scaling is element-wise, so the vector kernel over each run is
  // bit-identical to the rotated scalar loop.
  const std::size_t first = std::min(size_, buf_.size() - head_);
  simd::scale(buf_.data() + head_, factor, first);
  simd::scale(buf_.data(), factor, size_ - first);
}

void RingSeries::addFrom(const RingSeries& other) {
  TIRESIAS_EXPECT(other.size_ == size_,
                  "merge requires equal-length series");
  // Both rings are rotated (independently), so logical position i is
  // contiguous on each side until one of them wraps: at most three runs
  // where both sides are flat, each handled by the vector kernel.
  std::size_t i = 0;
  while (i < size_) {
    const std::size_t dstAt = index(i);
    const std::size_t srcAt = other.index(i);
    const std::size_t len = std::min(
        {size_ - i, buf_.size() - dstAt, other.buf_.size() - srcAt});
    simd::add(buf_.data() + dstAt, other.buf_.data() + srcAt, len);
    i += len;
  }
}

double RingSeries::sum() const {
  double total = 0.0;
  for (std::size_t i = 0; i < size_; ++i) total += buf_[index(i)];
  return total;
}

double RingSeries::sumLatest(std::size_t n) const {
  TIRESIAS_EXPECT(n <= size_, "not enough values");
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) total += fromLatest(j);
  return total;
}

std::vector<double> RingSeries::toVector() const {
  std::vector<double> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = at(i);
  return out;
}

void RingSeries::appendTo(std::vector<double>& out) const {
  out.reserve(out.size() + size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
}

void RingSeries::saveState(persist::Serializer& out) const {
  out.u64(buf_.size());
  out.u64(size_);
  for (std::size_t i = 0; i < size_; ++i) out.f64(at(i));
}

void RingSeries::loadState(persist::Deserializer& in) {
  const std::size_t capacity = in.boundedCount(persist::kMaxUnbackedCount);
  const std::size_t size = in.count(sizeof(double));
  persist::Deserializer::require(size <= capacity,
                                 "ring snapshot: size exceeds capacity");
  buf_.assign(capacity, 0.0);
  head_ = 0;
  size_ = 0;
  for (std::size_t i = 0; i < size; ++i) push(in.f64());
}

void RingSeries::clear() {
  head_ = 0;
  size_ = 0;
}

void RingSeries::assign(const std::vector<double>& values) {
  clear();
  const std::size_t skip =
      values.size() > capacity() ? values.size() - capacity() : 0;
  for (std::size_t i = skip; i < values.size(); ++i) push(values[i]);
}

}  // namespace tiresias
