#include "timeseries/multiscale.h"

#include "common/expect.h"

namespace tiresias {

MultiScaleSeries::MultiScaleSeries(std::size_t scales, std::size_t lambda,
                                   std::size_t capacity, double alpha)
    : lambda_(lambda), alpha_(alpha) {
  TIRESIAS_EXPECT(scales >= 1, "need at least one scale");
  TIRESIAS_EXPECT(lambda >= 2, "lambda must be at least 2");
  TIRESIAS_EXPECT(capacity >= 1, "capacity must be positive");
  TIRESIAS_EXPECT(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  for (std::size_t i = 0; i < scales; ++i) {
    actual_.emplace_back(capacity);
    forecast_.emplace_back(capacity);
  }
  ewma_.assign(scales, 0.0);
  ewmaSeeded_.assign(scales, false);
  pendingSum_.assign(scales, 0.0);
  pendingCount_.assign(scales, 0);
}

void MultiScaleSeries::push(double value) {
  ++pushCount_;
  pushAt(0, value);
}

void MultiScaleSeries::pushAt(std::size_t scale, double value) {
  // Forecast for this unit is the EWMA state *before* absorbing it
  // (F[t] = α·T[t−1] + (1−α)·F[t−1]).
  forecast_[scale].push(ewmaSeeded_[scale] ? ewma_[scale] : value);
  actual_[scale].push(value);
  if (!ewmaSeeded_[scale]) {
    ewma_[scale] = value;
    ewmaSeeded_[scale] = true;
  } else {
    ewma_[scale] = alpha_ * value + (1.0 - alpha_) * ewma_[scale];
  }

  if (scale + 1 >= actual_.size()) return;
  pendingSum_[scale] += value;
  if (++pendingCount_[scale] == lambda_) {
    const double sum = pendingSum_[scale];
    pendingSum_[scale] = 0.0;
    pendingCount_[scale] = 0;
    pushAt(scale + 1, sum);
  }
}

void MultiScaleSeries::saveState(persist::Serializer& out) const {
  out.u64(lambda_);
  out.f64(alpha_);
  out.u64(pushCount_);
  out.u64(actual_.size());
  for (std::size_t i = 0; i < actual_.size(); ++i) {
    actual_[i].saveState(out);
    forecast_[i].saveState(out);
    out.f64(ewma_[i]);
    out.boolean(ewmaSeeded_[i]);
    out.f64(pendingSum_[i]);
    out.u64(pendingCount_[i]);
  }
}

void MultiScaleSeries::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  const std::size_t lambda = in.boundedCount(persist::kMaxUnbackedCount);
  Deserializer::require(lambda >= 2, "multiscale snapshot: lambda < 2");
  const double alpha = in.f64();
  Deserializer::require(alpha > 0.0 && alpha <= 1.0,
                        "multiscale snapshot: alpha out of range");
  const std::size_t pushCount = in.u64();
  const std::size_t scales = in.count(1);
  Deserializer::require(scales >= 1, "multiscale snapshot: no scales");

  std::vector<RingSeries> actual(scales), forecast(scales);
  std::vector<double> ewma(scales), pendingSum(scales);
  std::vector<bool> seeded(scales);
  std::vector<std::size_t> pendingCount(scales);
  for (std::size_t i = 0; i < scales; ++i) {
    actual[i].loadState(in);
    forecast[i].loadState(in);
    Deserializer::require(actual[i].capacity() >= 1 &&
                              actual[i].capacity() == forecast[i].capacity() &&
                              actual[i].capacity() == actual[0].capacity(),
                          "multiscale snapshot: inconsistent ring capacity");
    ewma[i] = in.f64();
    seeded[i] = in.boolean();
    pendingSum[i] = in.f64();
    pendingCount[i] = in.u64();
    Deserializer::require(pendingCount[i] < lambda,
                          "multiscale snapshot: pending count >= lambda");
  }

  lambda_ = lambda;
  alpha_ = alpha;
  pushCount_ = pushCount;
  actual_ = std::move(actual);
  forecast_ = std::move(forecast);
  ewma_ = std::move(ewma);
  ewmaSeeded_ = std::move(seeded);
  pendingSum_ = std::move(pendingSum);
  pendingCount_ = std::move(pendingCount);
}

const RingSeries& MultiScaleSeries::actual(std::size_t scale) const {
  TIRESIAS_EXPECT(scale < actual_.size(), "scale out of range");
  return actual_[scale];
}

const RingSeries& MultiScaleSeries::forecastSeries(std::size_t scale) const {
  TIRESIAS_EXPECT(scale < forecast_.size(), "scale out of range");
  return forecast_[scale];
}

}  // namespace tiresias
