#include "timeseries/multiscale.h"

#include "common/expect.h"

namespace tiresias {

MultiScaleSeries::MultiScaleSeries(std::size_t scales, std::size_t lambda,
                                   std::size_t capacity, double alpha)
    : lambda_(lambda), alpha_(alpha) {
  TIRESIAS_EXPECT(scales >= 1, "need at least one scale");
  TIRESIAS_EXPECT(lambda >= 2, "lambda must be at least 2");
  TIRESIAS_EXPECT(capacity >= 1, "capacity must be positive");
  TIRESIAS_EXPECT(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  for (std::size_t i = 0; i < scales; ++i) {
    actual_.emplace_back(capacity);
    forecast_.emplace_back(capacity);
  }
  ewma_.assign(scales, 0.0);
  ewmaSeeded_.assign(scales, false);
  pendingSum_.assign(scales, 0.0);
  pendingCount_.assign(scales, 0);
}

void MultiScaleSeries::push(double value) {
  ++pushCount_;
  pushAt(0, value);
}

void MultiScaleSeries::pushAt(std::size_t scale, double value) {
  // Forecast for this unit is the EWMA state *before* absorbing it
  // (F[t] = α·T[t−1] + (1−α)·F[t−1]).
  forecast_[scale].push(ewmaSeeded_[scale] ? ewma_[scale] : value);
  actual_[scale].push(value);
  if (!ewmaSeeded_[scale]) {
    ewma_[scale] = value;
    ewmaSeeded_[scale] = true;
  } else {
    ewma_[scale] = alpha_ * value + (1.0 - alpha_) * ewma_[scale];
  }

  if (scale + 1 >= actual_.size()) return;
  pendingSum_[scale] += value;
  if (++pendingCount_[scale] == lambda_) {
    const double sum = pendingSum_[scale];
    pendingSum_[scale] = 0.0;
    pendingCount_[scale] = 0;
    pushAt(scale + 1, sum);
  }
}

const RingSeries& MultiScaleSeries::actual(std::size_t scale) const {
  TIRESIAS_EXPECT(scale < actual_.size(), "scale out of range");
  return actual_[scale];
}

const RingSeries& MultiScaleSeries::forecastSeries(std::size_t scale) const {
  TIRESIAS_EXPECT(scale < forecast_.size(), "scale out of range");
  return forecast_[scale];
}

}  // namespace tiresias
