// Multi-timescale series maintenance (§V-B6, Fig 10).
//
// Maintains η time scales where scale i has unit size λ^i · Δ. Every push
// at scale 0 may cascade: once λ values accumulate at scale i, their sum is
// pushed to scale i+1. Each scale carries its own actual ring, forecast
// ring, and per-scale EWMA forecaster exactly as the paper's UPDATE_TS
// pseudocode does. Amortized O(1) per base-unit push (Σ κ/λ^i ≤ 2κ).
//
// This is how ADA supports a detection timeunit Δ that is a multiple of the
// window increment ς: run the core at unit size ς and read the detection
// series at the scale whose unit is Δ.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/ring.h"

namespace tiresias {

class MultiScaleSeries {
 public:
  /// `scales` = η ≥ 1, `lambda` = λ ≥ 2, `capacity` = ℓ values kept per
  /// scale, `alpha` = EWMA smoothing for the per-scale forecast series.
  MultiScaleSeries(std::size_t scales, std::size_t lambda,
                   std::size_t capacity, double alpha);

  /// Append a base-scale value; cascades to coarser scales when due.
  void push(double value);

  std::size_t scales() const { return actual_.size(); }
  std::size_t lambda() const { return lambda_; }

  const RingSeries& actual(std::size_t scale) const;
  const RingSeries& forecastSeries(std::size_t scale) const;
  /// Total base-scale values pushed so far.
  std::size_t pushCount() const { return pushCount_; }

  /// Snapshot every scale's rings, EWMA state and pending cascade sums.
  void saveState(persist::Serializer& out) const;
  /// Restore, replacing shape (η, λ, α) and contents. Throws
  /// persist::SnapshotError on malformed input.
  void loadState(persist::Deserializer& in);

 private:
  void pushAt(std::size_t scale, double value);

  std::size_t lambda_;
  double alpha_;
  std::vector<RingSeries> actual_;
  std::vector<RingSeries> forecast_;
  std::vector<double> ewma_;        // per-scale EWMA state
  std::vector<bool> ewmaSeeded_;
  std::vector<double> pendingSum_;  // partial sum awaiting cascade
  std::vector<std::size_t> pendingCount_;
  std::size_t pushCount_ = 0;
};

}  // namespace tiresias
