// Fixed-capacity ring buffer of time-series values.
//
// Each heavy hitter holds two of these (actual and forecast series of
// length ℓ, Fig 5 lines 26-29). Push evicts the oldest value once full.
// The split/merge adaptation needs element-wise scaling and addition, which
// are provided in place.
#pragma once

#include <cstddef>
#include <vector>

#include "persist/snapshot.h"

namespace tiresias {

class RingSeries {
 public:
  RingSeries() = default;
  explicit RingSeries(std::size_t capacity);

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Append a value, evicting the oldest if at capacity.
  void push(double v);

  /// i-th value, oldest first (0 <= i < size()).
  double at(std::size_t i) const;
  /// j-th value counting back from the newest (fromLatest(0) == newest).
  double fromLatest(std::size_t j) const;

  double latest() const { return fromLatest(0); }

  /// Replace the i-th (oldest-first) value.
  void set(std::size_t i, double v);

  /// Multiply every element by `factor` (series split).
  void scale(double factor);
  /// Element-wise add another series of the same size (series merge).
  void addFrom(const RingSeries& other);

  /// Sum of all stored values.
  double sum() const;
  /// Sum of the newest n values.
  double sumLatest(std::size_t n) const;

  /// Copy out as a flat vector, oldest first.
  std::vector<double> toVector() const;
  /// Append all values (oldest first) to `out`, reusing its capacity.
  void appendTo(std::vector<double>& out) const;

  /// Snapshot the ring (capacity + values oldest-first; the rotation is
  /// normalized away, so equal observable state encodes identically).
  void saveState(persist::Serializer& out) const;
  /// Restore from a snapshot, replacing capacity and contents. Throws
  /// persist::SnapshotError on malformed input.
  void loadState(persist::Deserializer& in);

  /// Reset to empty, keeping capacity.
  void clear();
  /// Fill to full capacity from a flat vector (oldest first); the vector's
  /// last `capacity()` elements are used if it is longer.
  void assign(const std::vector<double>& values);

 private:
  std::size_t index(std::size_t i) const {
    // head_ and i are both below capacity, so one conditional subtraction
    // wraps — no hardware division on the per-unit push/read path.
    const std::size_t idx = head_ + i;
    return idx >= buf_.size() ? idx - buf_.size() : idx;
  }

  std::vector<double> buf_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace tiresias
