// Additive Holt-Winters seasonal forecasting (§VI).
//
//   L[t] = α(T[t] − S̄[t−υ]) + (1−α)(L[t−1] + B[t−1])
//   B[t] = β(L[t] − L[t−1]) + (1−β)B[t−1]
//   Sᵢ[t] = γ(T[t] − L[t]) + (1−γ)Sᵢ[t−υᵢ]      for each season i
//   G[t] = L[t−1] + B[t−1] + S̄[t−υ]
//
// where S̄ is the weighted combination of the configured seasonal cycles
// (the paper combines day and week as S = ξ·S_day + (1−ξ)·S_week with
// ξ = FFT_day / FFT_week = 0.76 for CCD). With a single season this is the
// textbook additive model of Brutlag [14].
//
// Initialization follows the paper's bootstrap: given at least two full
// cycles of the longest season, level is the history mean, trend is the
// difference of cycle means divided by the cycle length, and seasonal
// indices are deviations from the level averaged across cycles. All pieces
// are linear in the input series, which is what makes Lemma 2 (forecast
// linearity under series addition) hold — ADA's split/merge moves this
// state by scaling/adding it instead of refitting.
#pragma once

#include <vector>

#include "timeseries/forecaster.h"

namespace tiresias {

struct HoltWintersParams {
  double alpha = 0.5;  // level smoothing
  double beta = 0.1;   // trend smoothing
  double gamma = 0.3;  // seasonal smoothing
};

struct SeasonSpec {
  std::size_t period;  // in timeunits (e.g. 96 for a day of 15-min units)
  double weight;       // combination weight; weights should sum to 1
};

class HoltWintersForecaster final : public Forecaster {
 public:
  /// `seasons` may be empty, in which case the model degenerates to
  /// Holt's linear (level+trend) method.
  HoltWintersForecaster(HoltWintersParams params,
                        std::vector<SeasonSpec> seasons);

  double forecast() const override;
  void update(double actual) override;
  void initFromHistory(std::span<const double> history) override;
  void scale(double ratio) override;
  void addFrom(const Forecaster& other) override;
  std::unique_ptr<Forecaster> clone() const override;
  void saveState(persist::Serializer& out) const override;
  void loadState(persist::Deserializer& in) override;

  bool bootstrapped() const { return bootstrapped_; }
  double level() const { return level_; }
  double trend() const { return trend_; }
  /// Seasonal index of season `i` at lag `j` units back (j=1 is the entry
  /// that will be used for the next forecast).
  double seasonal(std::size_t i, std::size_t lag) const;
  /// Minimum history needed for the closed-form bootstrap (2·max period,
  /// or 2 without seasons).
  std::size_t bootstrapLength() const;

 private:
  double combinedSeasonAhead() const;

  HoltWintersParams params_;
  std::vector<SeasonSpec> seasons_;
  // Per-season circular buffers of the last `period` seasonal indices;
  // cursor_[i] points at the slot that is `period` units old (the one the
  // next forecast reads and the next update overwrites).
  std::vector<std::vector<double>> seasonal_;
  std::vector<std::size_t> cursor_;
  double level_ = 0.0;
  double trend_ = 0.0;
  bool bootstrapped_ = false;
  // Warm-up buffer used until enough history arrives for the bootstrap.
  std::vector<double> warmup_;
};

class HoltWintersFactory final : public ForecasterFactory {
 public:
  HoltWintersFactory(HoltWintersParams params, std::vector<SeasonSpec> seasons)
      : params_(params), seasons_(std::move(seasons)) {}

  std::unique_ptr<Forecaster> make() const override {
    return std::make_unique<HoltWintersForecaster>(params_, seasons_);
  }

 private:
  HoltWintersParams params_;
  std::vector<SeasonSpec> seasons_;
};

}  // namespace tiresias
