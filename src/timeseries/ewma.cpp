#include "timeseries/ewma.h"

#include "common/expect.h"

namespace tiresias {

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  TIRESIAS_EXPECT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

void EwmaForecaster::update(double actual) {
  if (!seeded_) {
    value_ = actual;
    seeded_ = true;
    return;
  }
  value_ = alpha_ * actual + (1.0 - alpha_) * value_;
}

void EwmaForecaster::initFromHistory(std::span<const double> history) {
  seeded_ = false;
  value_ = 0.0;
  for (double v : history) update(v);
}

void EwmaForecaster::addFrom(const Forecaster& other) {
  const auto* o = dynamic_cast<const EwmaForecaster*>(&other);
  TIRESIAS_EXPECT(o != nullptr, "EWMA merge requires an EWMA source");
  TIRESIAS_EXPECT(o->alpha_ == alpha_, "EWMA merge requires matching alpha");
  value_ += o->value_;
  seeded_ = seeded_ || o->seeded_;
}

std::unique_ptr<Forecaster> EwmaForecaster::clone() const {
  return std::make_unique<EwmaForecaster>(*this);
}

void EwmaForecaster::saveState(persist::Serializer& out) const {
  out.u8(kEwmaStateTag);
  out.f64(alpha_);
  out.f64(value_);
  out.boolean(seeded_);
}

void EwmaForecaster::loadState(persist::Deserializer& in) {
  persist::Deserializer::require(in.u8() == kEwmaStateTag,
                                 "snapshot holds a different forecaster type");
  const double alpha = in.f64();
  persist::Deserializer::require(alpha > 0.0 && alpha <= 1.0,
                                 "EWMA snapshot: alpha out of range");
  alpha_ = alpha;
  value_ = in.f64();
  seeded_ = in.boolean();
}

}  // namespace tiresias
