// Exponentially weighted moving average forecaster:
//   F[t] = α·T[t-1] + (1-α)·F[t-1]
// The paper uses EWMA both as the strawman forecast model in the split-error
// analysis (§V-B4, Fig 9) and as the per-scale forecast in the multi-scale
// series update (Fig 10).
#pragma once

#include "timeseries/forecaster.h"

namespace tiresias {

class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);

  double forecast() const override { return value_; }
  void update(double actual) override;
  void initFromHistory(std::span<const double> history) override;
  void scale(double ratio) override { value_ *= ratio; }
  void addFrom(const Forecaster& other) override;
  std::unique_ptr<Forecaster> clone() const override;
  void saveState(persist::Serializer& out) const override;
  void loadState(persist::Deserializer& in) override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

class EwmaFactory final : public ForecasterFactory {
 public:
  explicit EwmaFactory(double alpha) : alpha_(alpha) {}
  std::unique_ptr<Forecaster> make() const override {
    return std::make_unique<EwmaForecaster>(alpha_);
  }

 private:
  double alpha_;
};

}  // namespace tiresias
