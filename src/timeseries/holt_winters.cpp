#include "timeseries/holt_winters.h"

#include <algorithm>

#include "common/expect.h"

namespace tiresias {

HoltWintersForecaster::HoltWintersForecaster(HoltWintersParams params,
                                             std::vector<SeasonSpec> seasons)
    : params_(params), seasons_(std::move(seasons)) {
  TIRESIAS_EXPECT(params_.alpha > 0.0 && params_.alpha <= 1.0,
                  "alpha must be in (0,1]");
  TIRESIAS_EXPECT(params_.beta >= 0.0 && params_.beta <= 1.0,
                  "beta must be in [0,1]");
  TIRESIAS_EXPECT(params_.gamma >= 0.0 && params_.gamma <= 1.0,
                  "gamma must be in [0,1]");
  for (const auto& s : seasons_) {
    TIRESIAS_EXPECT(s.period >= 2, "seasonal period must be at least 2");
    seasonal_.emplace_back(s.period, 0.0);
    cursor_.push_back(0);
  }
}

std::size_t HoltWintersForecaster::bootstrapLength() const {
  std::size_t maxPeriod = 1;
  for (const auto& s : seasons_) maxPeriod = std::max(maxPeriod, s.period);
  return 2 * maxPeriod;
}

double HoltWintersForecaster::combinedSeasonAhead() const {
  double s = 0.0;
  for (std::size_t i = 0; i < seasons_.size(); ++i) {
    s += seasons_[i].weight * seasonal_[i][cursor_[i]];
  }
  return s;
}

double HoltWintersForecaster::forecast() const {
  if (!bootstrapped_) {
    // Best effort during warm-up: running mean of what has been seen.
    if (warmup_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : warmup_) sum += v;
    return sum / static_cast<double>(warmup_.size());
  }
  return level_ + trend_ + combinedSeasonAhead();
}

void HoltWintersForecaster::update(double actual) {
  if (!bootstrapped_) {
    warmup_.push_back(actual);
    if (warmup_.size() >= bootstrapLength()) {
      // Promote the warm-up buffer to a proper bootstrap.
      const std::vector<double> history = std::move(warmup_);
      warmup_.clear();
      initFromHistory(history);
    }
    return;
  }

  const double seasonOld = combinedSeasonAhead();
  const double newLevel = params_.alpha * (actual - seasonOld) +
                          (1.0 - params_.alpha) * (level_ + trend_);
  trend_ =
      params_.beta * (newLevel - level_) + (1.0 - params_.beta) * trend_;
  for (std::size_t i = 0; i < seasons_.size(); ++i) {
    double& slot = seasonal_[i][cursor_[i]];
    slot = params_.gamma * (actual - newLevel) + (1.0 - params_.gamma) * slot;
    cursor_[i] = (cursor_[i] + 1) % seasons_[i].period;
  }
  level_ = newLevel;
}

void HoltWintersForecaster::initFromHistory(std::span<const double> history) {
  // Reset.
  bootstrapped_ = false;
  warmup_.clear();
  level_ = trend_ = 0.0;
  for (auto& s : seasonal_) std::fill(s.begin(), s.end(), 0.0);
  std::fill(cursor_.begin(), cursor_.end(), 0);

  const std::size_t window = bootstrapLength();
  if (history.size() < window) {
    // Not enough for the closed-form bootstrap; accumulate as warm-up.
    for (double v : history) update(v);
    return;
  }

  // Closed-form bootstrap on the first `window` points (two cycles of the
  // longest season), then replay the remainder through the recursions.
  double total = 0.0;
  for (std::size_t i = 0; i < window; ++i) total += history[i];
  level_ = total / static_cast<double>(window);

  const std::size_t half = window / 2;
  double first = 0.0, second = 0.0;
  for (std::size_t i = 0; i < half; ++i) first += history[i];
  for (std::size_t i = half; i < window; ++i) second += history[i];
  // Cycle means drift by `half` units between the two cycles.
  trend_ = (second - first) / static_cast<double>(half) /
           static_cast<double>(half);

  for (std::size_t i = 0; i < seasons_.size(); ++i) {
    const std::size_t p = seasons_[i].period;
    std::vector<double> sums(p, 0.0);
    std::vector<std::size_t> counts(p, 0);
    for (std::size_t k = 0; k < window; ++k) {
      sums[k % p] += history[k] - level_;
      ++counts[k % p];
    }
    for (std::size_t j = 0; j < p; ++j) {
      seasonal_[i][j] =
          counts[j] ? sums[j] / static_cast<double>(counts[j]) : 0.0;
    }
    // The next forecast must read S[window - p], whose slot is
    // window mod p.
    cursor_[i] = window % p;
  }
  bootstrapped_ = true;

  for (std::size_t k = window; k < history.size(); ++k) update(history[k]);
}

void HoltWintersForecaster::scale(double ratio) {
  level_ *= ratio;
  trend_ *= ratio;
  for (auto& season : seasonal_) {
    for (double& v : season) v *= ratio;
  }
  for (double& v : warmup_) v *= ratio;
}

void HoltWintersForecaster::addFrom(const Forecaster& other) {
  const auto* o = dynamic_cast<const HoltWintersForecaster*>(&other);
  TIRESIAS_EXPECT(o != nullptr, "Holt-Winters merge requires matching type");
  TIRESIAS_EXPECT(o->seasons_.size() == seasons_.size(),
                  "Holt-Winters merge requires matching seasons");
  TIRESIAS_EXPECT(o->bootstrapped_ == bootstrapped_,
                  "Holt-Winters merge requires matching bootstrap state");
  if (!bootstrapped_) {
    TIRESIAS_EXPECT(o->warmup_.size() == warmup_.size(),
                    "Holt-Winters merge requires aligned warm-up");
    for (std::size_t i = 0; i < warmup_.size(); ++i) {
      warmup_[i] += o->warmup_[i];
    }
    return;
  }
  level_ += o->level_;
  trend_ += o->trend_;
  for (std::size_t i = 0; i < seasons_.size(); ++i) {
    const std::size_t p = seasons_[i].period;
    TIRESIAS_EXPECT(o->seasons_[i].period == p,
                    "Holt-Winters merge requires matching periods");
    // Align by lag: slot (cursor + j) corresponds to the same absolute
    // timeunit in both models even if they bootstrapped at different times.
    for (std::size_t j = 0; j < p; ++j) {
      seasonal_[i][(cursor_[i] + j) % p] +=
          o->seasonal_[i][(o->cursor_[i] + j) % p];
    }
  }
}

std::unique_ptr<Forecaster> HoltWintersForecaster::clone() const {
  return std::make_unique<HoltWintersForecaster>(*this);
}

void HoltWintersForecaster::saveState(persist::Serializer& out) const {
  out.u8(kHoltWintersStateTag);
  out.f64(params_.alpha);
  out.f64(params_.beta);
  out.f64(params_.gamma);
  out.u64(seasons_.size());
  for (std::size_t i = 0; i < seasons_.size(); ++i) {
    out.u64(seasons_[i].period);
    out.f64(seasons_[i].weight);
    out.u64(cursor_[i]);
    for (double v : seasonal_[i]) out.f64(v);
  }
  out.f64(level_);
  out.f64(trend_);
  out.boolean(bootstrapped_);
  out.u64(warmup_.size());
  for (double v : warmup_) out.f64(v);
}

void HoltWintersForecaster::loadState(persist::Deserializer& in) {
  using persist::Deserializer;
  Deserializer::require(in.u8() == kHoltWintersStateTag,
                        "snapshot holds a different forecaster type");
  HoltWintersParams params;
  params.alpha = in.f64();
  params.beta = in.f64();
  params.gamma = in.f64();
  Deserializer::require(params.alpha > 0.0 && params.alpha <= 1.0,
                        "Holt-Winters snapshot: alpha out of range");
  Deserializer::require(params.beta >= 0.0 && params.beta <= 1.0,
                        "Holt-Winters snapshot: beta out of range");
  Deserializer::require(params.gamma >= 0.0 && params.gamma <= 1.0,
                        "Holt-Winters snapshot: gamma out of range");
  const std::size_t nSeasons = in.count(3 * sizeof(std::uint64_t));
  std::vector<SeasonSpec> seasons;
  std::vector<std::vector<double>> seasonal;
  std::vector<std::size_t> cursor;
  for (std::size_t i = 0; i < nSeasons; ++i) {
    SeasonSpec spec;
    spec.period = in.boundedCount(persist::kMaxUnbackedCount);
    Deserializer::require(spec.period >= 2,
                          "Holt-Winters snapshot: seasonal period < 2");
    spec.weight = in.f64();
    const std::size_t cur = in.u64();
    Deserializer::require(cur < spec.period,
                          "Holt-Winters snapshot: cursor out of range");
    Deserializer::require(spec.period <= in.remaining() / sizeof(double),
                          "Holt-Winters snapshot: seasonal array truncated");
    std::vector<double> indices(spec.period);
    for (double& v : indices) v = in.f64();
    seasons.push_back(spec);
    seasonal.push_back(std::move(indices));
    cursor.push_back(cur);
  }
  const double level = in.f64();
  const double trend = in.f64();
  const bool bootstrapped = in.boolean();
  const std::size_t nWarmup = in.count(sizeof(double));
  std::vector<double> warmup(nWarmup);
  for (double& v : warmup) v = in.f64();

  params_ = params;
  seasons_ = std::move(seasons);
  seasonal_ = std::move(seasonal);
  cursor_ = std::move(cursor);
  level_ = level;
  trend_ = trend;
  bootstrapped_ = bootstrapped;
  warmup_ = std::move(warmup);
}

double HoltWintersForecaster::seasonal(std::size_t i, std::size_t lag) const {
  TIRESIAS_EXPECT(i < seasons_.size(), "season index out of range");
  const std::size_t p = seasons_[i].period;
  return seasonal_[i][(cursor_[i] + lag) % p];
}

}  // namespace tiresias
