// Forecasting model interface.
//
// A Forecaster predicts the next timeunit's value from the values it has
// been fed so far. ADA moves forecaster state through the hierarchy, so the
// interface exposes the two linear operations the adaptation relies on:
// scale(r) (series split with ratio r) and addFrom(other) (series merge).
// For the additive Holt-Winters model these are exact (Lemma 2); for EWMA
// they are exact as well (the forecast is a linear functional of history).
#pragma once

#include <memory>
#include <span>

#include "persist/snapshot.h"

namespace tiresias {

/// Leading type tags of serialized forecaster state: loadState() on a
/// mismatched dynamic type must fail with a clean SnapshotError, not
/// misinterpret bytes.
inline constexpr std::uint8_t kEwmaStateTag = 1;
inline constexpr std::uint8_t kHoltWintersStateTag = 2;

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Prediction for the next value to be observed (F[t] in Definition 4).
  virtual double forecast() const = 0;

  /// Feed the observed value for the current timeunit and advance.
  virtual void update(double actual) = 0;

  /// Initialize/refit from a full history window, oldest first. Equivalent
  /// to feeding the history to a fresh instance, but implementations may use
  /// their closed-form bootstrap (Holt-Winters' 2υ initialization).
  virtual void initFromHistory(std::span<const double> history) = 0;

  /// Multiply the internal state by `ratio` (split).
  virtual void scale(double ratio) = 0;

  /// Add another forecaster's state into this one (merge). The dynamic
  /// types and shape parameters must match.
  virtual void addFrom(const Forecaster& other) = 0;

  virtual std::unique_ptr<Forecaster> clone() const = 0;

  /// Snapshot the full model state, prefixed with the type tag above.
  virtual void saveState(persist::Serializer& out) const = 0;
  /// Restore state saved by the same dynamic type (shape parameters are
  /// overwritten from the snapshot). Throws persist::SnapshotError on a
  /// type-tag mismatch or malformed input.
  virtual void loadState(persist::Deserializer& in) = 0;
};

/// Creates fresh forecasters for newly promoted heavy hitters.
class ForecasterFactory {
 public:
  virtual ~ForecasterFactory() = default;
  virtual std::unique_ptr<Forecaster> make() const = 0;
};

}  // namespace tiresias
