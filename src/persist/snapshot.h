// Versioned binary snapshot format for checkpoint/restore.
//
// Every stateful component implements saveState(Serializer&) /
// loadState(Deserializer&); the engine frames component payloads into
// sections and writes them atomically (write-to-temp + rename), so a crash
// mid-checkpoint can never leave a truncated file under the published name.
//
// File layout (all integers little-endian, fixed width):
//
//   +--------+---------------+       +-- per section ------------------+
//   | magic  | formatVersion |  then | tag u32 | len u64 | crc32 u32 |  |
//   | "TSNP" | u32 (= 1)     |       | payload bytes (len)            |
//   +--------+---------------+       +--------------------------------+
//
// The CRC covers the payload only; tag/length corruption is caught by the
// bounds checks (a corrupted length either overruns the file, which is a
// parse error, or truncates the payload, which fails the CRC). Decoding is
// defensive end to end: every read is bounds-checked, every count is
// validated against the bytes that could possibly back it, and every
// failure throws SnapshotError — corrupted or adversarial input must never
// crash, over-read, or over-allocate.
//
// Versioning rules: formatVersion guards the container layout; readers
// reject versions they do not know. Component payloads carry their own
// leading type tags (detector kind, forecaster kind) so a snapshot
// restored into a mismatched object fails with a clean error instead of
// misinterpreting bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tiresias::persist {

/// Any decode failure: truncated input, bad magic/version, CRC mismatch,
/// type-tag mismatch, or a semantic validation failure (e.g. ring size
/// exceeding its capacity). Always an exception, never an abort: snapshot
/// bytes come from disk and must be treated as untrusted input.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Append-only binary encoder. Little-endian fixed-width integers; doubles
/// as their IEEE-754 bit pattern (bit-identical round trips by design).
class Serializer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { appendLe(v, 4); }
  void u64(std::uint64_t v) { appendLe(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  void bytes(std::span<const std::uint8_t> b);
  /// Append `b` verbatim, no length prefix — for splicing an
  /// already-encoded payload (e.g. a hibernated pipeline's state bytes)
  /// into a larger stream at exactly the position the inline encoder
  /// would have produced it.
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  void appendLe(std::uint64_t v, int width);

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked binary decoder over a borrowed byte range. Every
/// overrun throws SnapshotError; the underlying bytes must outlive the
/// decoder.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::string str();

  /// Read an element count and validate it against the bytes remaining
  /// (each element needs at least `minElemBytes` more bytes), so a
  /// corrupted count can never drive a multi-gigabyte allocation.
  std::size_t count(std::size_t minElemBytes);

  /// Read a count that is not byte-backed (e.g. a ring capacity that may
  /// exceed the stored values) and bound it explicitly.
  std::size_t boundedCount(std::size_t max);

  /// Copy the next `n` bytes out in bulk (bounds-checked once).
  std::vector<std::uint8_t> raw(std::size_t n);

  /// Semantic validation helper: throws SnapshotError with `msg` when the
  /// condition does not hold.
  static void require(bool cond, const char* msg) {
    if (!cond) throw SnapshotError(msg);
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool atEnd() const { return pos_ == buf_.size(); }

 private:
  std::uint64_t readLe(int width);

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

inline constexpr std::uint32_t kSnapshotMagic = 0x504E5354;  // "TSNP"
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Upper bound for counts that are not backed 1:1 by snapshot bytes
/// (ring capacities, seasonal periods): 2^26 doubles = 512 MiB, far above
/// any real configuration but small enough that a corrupted count cannot
/// drive an OOM before validation fails.
inline constexpr std::size_t kMaxUnbackedCount = std::size_t{1} << 26;

struct SnapshotSection {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Collects tagged sections and encodes the framed snapshot.
class SnapshotWriter {
 public:
  /// Append one section. Tags may repeat (e.g. one section per stream).
  void addSection(std::uint32_t tag, const Serializer& payload);

  /// Full snapshot bytes: header followed by every section in order.
  std::vector<std::uint8_t> encode() const;

  /// Atomic publish: encode to `path + ".tmp"`, flush, then rename over
  /// `path`. Returns the encoded byte count. Throws SnapshotError on any
  /// I/O failure (the temp file is removed best-effort).
  std::size_t writeFile(const std::string& path) const;

 private:
  std::vector<SnapshotSection> sections_;
};

/// Parses and CRC-verifies a snapshot; throws SnapshotError on any
/// structural problem (bad magic, unknown version, truncation, trailing
/// bytes, checksum mismatch).
class SnapshotReader {
 public:
  static SnapshotReader parse(std::span<const std::uint8_t> bytes);
  static SnapshotReader readFile(const std::string& path);

  const std::vector<SnapshotSection>& sections() const { return sections_; }

 private:
  std::vector<SnapshotSection> sections_;
};

}  // namespace tiresias::persist
