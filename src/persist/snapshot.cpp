#include "persist/snapshot.h"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>

namespace tiresias::persist {

namespace {

constexpr std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = makeCrcTable();

// Section frame: tag u32 + length u64 + crc u32.
constexpr std::size_t kSectionHeaderBytes = 4 + 8 + 4;
constexpr std::size_t kFileHeaderBytes = 8;  // magic + version

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Serializer::appendLe(std::uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Serializer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Serializer::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Serializer::bytes(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

std::uint64_t Deserializer::readLe(int width) {
  if (remaining() < static_cast<std::size_t>(width)) {
    throw SnapshotError("snapshot truncated: integer field overruns input");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

std::uint8_t Deserializer::u8() {
  return static_cast<std::uint8_t>(readLe(1));
}

std::uint32_t Deserializer::u32() {
  return static_cast<std::uint32_t>(readLe(4));
}

std::uint64_t Deserializer::u64() { return readLe(8); }

double Deserializer::f64() { return std::bit_cast<double>(u64()); }

bool Deserializer::boolean() {
  const std::uint8_t v = u8();
  require(v <= 1, "snapshot corrupt: boolean field is neither 0 nor 1");
  return v == 1;
}

std::string Deserializer::str() {
  const std::uint64_t len = u64();
  if (len > remaining()) {
    throw SnapshotError("snapshot truncated: string overruns input");
  }
  std::string out(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

std::size_t Deserializer::count(std::size_t minElemBytes) {
  const std::uint64_t n = u64();
  const std::size_t per = minElemBytes == 0 ? 1 : minElemBytes;
  if (n > remaining() / per) {
    throw SnapshotError(
        "snapshot corrupt: element count exceeds the bytes backing it");
  }
  return static_cast<std::size_t>(n);
}

std::vector<std::uint8_t> Deserializer::raw(std::size_t n) {
  if (n > remaining()) {
    throw SnapshotError("snapshot truncated: raw bytes overrun input");
  }
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::size_t Deserializer::boundedCount(std::size_t max) {
  const std::uint64_t n = u64();
  if (n > max) {
    throw SnapshotError("snapshot corrupt: count exceeds its sanity bound");
  }
  return static_cast<std::size_t>(n);
}

void SnapshotWriter::addSection(std::uint32_t tag, const Serializer& payload) {
  sections_.push_back({tag, payload.data()});
}

std::vector<std::uint8_t> SnapshotWriter::encode() const {
  Serializer out;
  out.u32(kSnapshotMagic);
  out.u32(kSnapshotFormatVersion);
  for (const auto& s : sections_) {
    out.u32(s.tag);
    out.u64(s.payload.size());
    out.u32(crc32(s.payload));
    out.bytes(s.payload);
  }
  return out.data();
}

std::size_t SnapshotWriter::writeFile(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("cannot open snapshot temp file: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw SnapshotError("failed writing snapshot temp file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("failed to publish snapshot: rename to " + path);
  }
  return bytes.size();
}

SnapshotReader SnapshotReader::parse(std::span<const std::uint8_t> bytes) {
  Deserializer in(bytes);
  if (in.remaining() < kFileHeaderBytes) {
    throw SnapshotError("snapshot truncated: missing file header");
  }
  if (in.u32() != kSnapshotMagic) {
    throw SnapshotError("not a snapshot file (bad magic)");
  }
  const std::uint32_t version = in.u32();
  if (version != kSnapshotFormatVersion) {
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(version));
  }
  SnapshotReader reader;
  while (!in.atEnd()) {
    if (in.remaining() < kSectionHeaderBytes) {
      throw SnapshotError("snapshot truncated: partial section header");
    }
    SnapshotSection section;
    section.tag = in.u32();
    const std::uint64_t len = in.u64();
    const std::uint32_t checksum = in.u32();
    if (len > in.remaining()) {
      throw SnapshotError("snapshot truncated: section payload overruns file");
    }
    section.payload = in.raw(static_cast<std::size_t>(len));
    if (crc32(section.payload) != checksum) {
      throw SnapshotError("snapshot corrupt: section CRC mismatch");
    }
    reader.sections_.push_back(std::move(section));
  }
  return reader;
}

SnapshotReader SnapshotReader::readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("cannot open snapshot file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) throw SnapshotError("failed reading snapshot file: " + path);
  return parse(bytes);
}

}  // namespace tiresias::persist
