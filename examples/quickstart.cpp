// Quickstart: build a tiny category hierarchy, stream some records through
// the ADA detector, and print the anomalies it finds.
//
//   $ ./quickstart
//
// Walks through the three core concepts: the hierarchical domain, the
// per-timeunit heavy-hitter set, and the Definition-4 anomaly test.
#include <cstdio>

#include "core/ada.h"
#include "hierarchy/builder.h"
#include "timeseries/ewma.h"

using namespace tiresias;

int main() {
  // 1. Describe the category hierarchy (here: a toy trouble-ticket tree).
  HierarchyBuilder builder("Trouble");
  const NodeId tv = builder.addChild(0, "TV");
  const NodeId net = builder.addChild(0, "Internet");
  builder.addChild(tv, "NoPicture");
  builder.addChild(tv, "NoSound");
  builder.addChild(net, "Slow");
  builder.addChild(net, "Down");
  const Hierarchy h = builder.build();
  std::printf("hierarchy: %zu nodes, %zu leaf categories, height %d\n",
              h.size(), h.leafCount(), h.height());

  // 2. Configure the detector: heavy-hitter threshold, history window,
  //    Definition-4 thresholds and a forecasting model.
  DetectorConfig cfg;
  cfg.theta = 5.0;          // a node needs >=5 cases/unit to be tracked
  cfg.windowLength = 12;    // keep 12 timeunits of history
  cfg.ratioThreshold = 2.0; // T/F must exceed 2.0 ...
  cfg.diffThreshold = 4.0;  // ... and T-F must exceed 4 cases
  cfg.forecasterFactory = std::make_shared<EwmaFactory>(0.4);
  AdaDetector detector(h, cfg);

  // 3. Stream timeunits. Normal load: ~6 "TV/NoPicture" cases per unit.
  const NodeId noPicture = h.find("TV/NoPicture");
  const Duration delta = 15 * kMinute;
  for (TimeUnit unit = 0; unit < 20; ++unit) {
    TimeUnitBatch batch;
    batch.unit = unit;
    const int cases = unit == 17 ? 30 : 6;  // outage at unit 17
    for (int i = 0; i < cases; ++i) {
      batch.records.push_back({noPicture, unitStart(unit, delta)});
    }
    const auto result = detector.step(batch);
    if (!result) continue;  // still filling the history window
    for (const auto& anomaly : result->anomalies) {
      std::printf("ANOMALY at %-16s unit=%lld actual=%.0f forecast=%.1f "
                  "(x%.1f)\n",
                  h.path(anomaly.node).c_str(),
                  static_cast<long long>(anomaly.unit), anomaly.actual,
                  anomaly.forecast, anomaly.actual / anomaly.forecast);
    }
  }
  std::printf("done: %zu splits, %zu merges performed by ADA\n",
              detector.splitCount(), detector.mergeCount());
  return 0;
}
