// Live-monitor scenario (Step 6 + the Fig 3(f) front end, as a CLI):
// simulates an operations console. Records arrive day by day; after each
// simulated day the example prints the incidents detected that day and
// shows the drill-down queries an operator would run against the store
// (time range, subtree, minimum severity). Also demonstrates CSV trace
// interchange: day 1 is written to disk and re-read through CsvSource.
//
//   $ ./live_monitor [days]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "report/store.h"
#include "stream/source.h"
#include "workload/ccd.h"

using namespace tiresias;
using namespace tiresias::workload;

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 10;

  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;

  GroundTruthLedger ledger;
  ledger.add({h.find("VHO3"), 8 * 96 + 50, 3, 180.0});
  ledger.add({h.find("VHO0/IO1"), 9 * 96 + 20, 4, 70.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);

  DetectorConfig dcfg;
  dcfg.theta = 10.0;
  dcfg.windowLength = 4 * 96;
  dcfg.referenceLevels = 2;
  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector = dcfg;
  cfg.candidatePeriods = {96};
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  report::AnomalyStore store(h);

  // Demonstrate trace interchange: generate day 1, write it to CSV, and
  // feed the pipeline from the file — the same path an ISP would use to
  // replay an archived trace.
  {
    GeneratorSource day0(spec, 0, 96, 1, injector);
    std::vector<Record> records;
    while (auto r = day0.next()) records.push_back(*r);
    writeRecordsCsv("live_monitor_day0.csv", h, records);
    std::printf("day 1: %zu records archived to live_monitor_day0.csv\n",
                records.size());
    CsvSource replay("live_monitor_day0.csv", h);
    pipeline.run(replay, [&](const InstanceResult& r) { store.add(r); });
  }

  for (int day = 1; day < days; ++day) {
    GeneratorSource source(spec, static_cast<TimeUnit>(day) * 96,
                           static_cast<TimeUnit>(day + 1) * 96,
                           static_cast<std::uint64_t>(day) + 1, injector);
    const std::size_t before = store.size();
    pipeline.run(source, [&](const InstanceResult& r) { store.add(r); });

    report::Query today;
    today.fromUnit = static_cast<TimeUnit>(day) * 96;
    today.toUnit = static_cast<TimeUnit>(day + 1) * 96 - 1;
    const auto hits = store.query(today);
    std::printf("day %2d: %3zu new reports", day + 1, store.size() - before);
    if (!hits.empty()) {
      std::printf("  e.g. %s (unit %lld, x%.1f)", hits.front().path.c_str(),
                  static_cast<long long>(hits.front().anomaly.unit),
                  hits.front().anomaly.actual /
                      std::max(hits.front().anomaly.forecast, 1.0));
    }
    std::printf("\n");
  }

  // Operator drill-down: the highest-severity events in week 2, then a
  // subtree-scoped query for one region.
  std::printf("\n-- severe events (ratio > 3) in week 2 --\n");
  report::Query severe;
  severe.fromUnit = 7 * 96;
  severe.minRatio = 3.0;
  for (const auto& e : store.query(severe)) {
    std::printf("  unit %lld  %-26s x%.1f\n",
                static_cast<long long>(e.anomaly.unit), e.path.c_str(),
                std::min(e.anomaly.ratio, 999.0));
  }
  std::printf("\n-- drill-down: everything under VHO0 --\n");
  report::Query regional;
  regional.subtreeRoot = h.find("VHO0");
  for (const auto& e : store.query(regional)) {
    std::printf("  unit %lld  %-26s actual=%.0f\n",
                static_cast<long long>(e.anomaly.unit), e.path.c_str(),
                e.anomaly.actual);
  }
  store.exportJsonl("live_monitor_report.jsonl");
  std::printf("\nreport exported to live_monitor_report.jsonl\n");
  return 0;
}
