// Set-top-box crash scenario (the paper's SCD case study): two weeks of
// synthetic STB crash logs over the National/CO/DSLAM/STB hierarchy.
// Demonstrates the multi-timescale view of §V-B6 alongside detection: the
// same stream is watched at 15-minute, 1-hour and 4-hour resolutions.
//
//   $ ./stb_crashes [seed]
#include <cstdio>
#include <cstdlib>

#include "core/ada.h"
#include "timeseries/holt_winters.h"
#include "timeseries/multiscale.h"
#include "workload/scd.h"

using namespace tiresias;
using namespace tiresias::workload;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const auto spec = scdNetworkWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  std::printf("SCD hierarchy: %zu nodes (%zu STBs)\n", h.size(),
              h.leafCount());

  // A firmware regression makes one DSLAM's boxes crash-loop for 2 hours.
  GroundTruthLedger ledger;
  const NodeId dslam = h.find("CO3/DSLAM1");
  ledger.add({dslam, 10 * 96 + 30, 8, 45.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  GeneratorSource source(spec, 0, 14 * 96, seed, injector);

  DetectorConfig cfg;
  cfg.theta = 6.0;
  cfg.windowLength = 5 * 96;
  cfg.referenceLevels = 1;
  // SCD needs only the daily season (§VII "System parameters").
  cfg.forecasterFactory = std::make_shared<HoltWintersFactory>(
      HoltWintersParams{0.5, 0.05, 0.3}, std::vector<SeasonSpec>{{96, 1.0}});
  AdaDetector detector(h, cfg);

  // Multi-timescale root-count view: eta = 3 scales, lambda = 4
  // (15 min -> 1 h -> 4 h).
  MultiScaleSeries rootView(3, 4, 5 * 96, 0.5);

  TimeUnitBatcher batcher(source, spec.unit, 0);
  std::size_t anomalies = 0;
  while (auto batch = batcher.next()) {
    rootView.push(static_cast<double>(batch->records.size()));
    if (auto result = detector.step(*batch)) {
      for (const auto& a : result->anomalies) {
        ++anomalies;
        std::printf("crash burst: unit %lld  %-22s actual=%.0f forecast=%.1f\n",
                    static_cast<long long>(a.unit), h.path(a.node).c_str(),
                    a.actual, a.forecast);
      }
    }
  }

  std::printf("\n%zu anomalies; ADA did %zu splits / %zu merges\n", anomalies,
              detector.splitCount(), detector.mergeCount());
  std::printf("\nroot crash counts at three timescales (latest 6 values):\n");
  const char* scaleName[] = {"15 min", "1 hour", "4 hours"};
  for (std::size_t s = 0; s < rootView.scales(); ++s) {
    std::printf("  %-7s ", scaleName[s]);
    const auto& series = rootView.actual(s);
    const std::size_t n = std::min<std::size_t>(series.size(), 6);
    for (std::size_t j = n; j-- > 0;) {
      std::printf("%6.0f ", series.fromLatest(j));
    }
    std::printf("\n");
  }
  return 0;
}
