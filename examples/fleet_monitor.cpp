// Fleet-monitor scenario: one engine watching a skewed fleet of
// operational streams — the deployment shape the task-scheduled executor
// exists for. A national CCD feed carries most of the traffic; a dozen
// regional feeds trickle; one feed is empty (a freshly provisioned
// region). A small shared worker pool serves all of them: the heavy feed
// is advanced a budget slice at a time, so the regional feeds interleave
// with it instead of queueing behind it, and every stream's results are
// bit-identical to a sequential run.
//
//   $ ./example_fleet_monitor [workers]
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "report/concurrent_store.h"
#include "timeseries/ewma.h"
#include "workload/ccd.h"
#include "workload/scd.h"

using namespace tiresias;
using namespace tiresias::workload;

int main(int argc, char** argv) {
  const int workersArg = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::size_t workers =
      workersArg > 0 ? static_cast<std::size_t>(workersArg) : 2;

  // Shared specs: every regional stream aliases one spec's hierarchy, so
  // the engine holds two hierarchies for the whole fleet (and keeps them
  // alive on its own — no lifetime burden on this scope).
  const auto national =
      std::make_shared<const WorkloadSpec>(ccdNetworkWorkload(Scale::kMedium));
  const auto regional =
      std::make_shared<const WorkloadSpec>(ccdTroubleWorkload(Scale::kTest));

  auto pipelineConfig = [](const WorkloadSpec& spec) {
    PipelineConfig cfg;
    cfg.delta = spec.unit;
    cfg.detector.theta = 8.0;
    cfg.detector.windowLength = 32;
    cfg.detector.forecasterFactory = std::make_shared<EwmaFactory>(0.5);
    return cfg;
  };

  engine::EngineConfig ecfg;
  ecfg.workers = workers;
  ecfg.ingestThreads = 2;
  ecfg.streamQueueCapacity = 8;  // tight: show requeues + backpressure
  ecfg.runBudget = 4;

  report::ConcurrentAnomalyStore store;
  engine::DetectionEngine eng(ecfg, store.sink());

  // The heavy national feed: 4 days of 15-minute units.
  store.registerStream("national", national->hierarchy);
  eng.addStream("national", sharedHierarchy(national),
                pipelineConfig(*national),
                std::make_unique<GeneratorSource>(*national, 0, 4 * 96, 1));
  // Twelve light regional feeds: half a day each.
  for (int r = 0; r < 12; ++r) {
    const std::string name = "region-" + std::to_string(r);
    store.registerStream(name, regional->hierarchy);
    eng.addStream(name, sharedHierarchy(regional), pipelineConfig(*regional),
                  std::make_unique<GeneratorSource>(
                      *regional, 0, 48, static_cast<std::uint64_t>(r) + 2));
  }
  // A freshly provisioned region: registered, no data yet.
  store.registerStream("region-new", regional->hierarchy);
  eng.addStream("region-new", sharedHierarchy(regional),
                pipelineConfig(*regional),
                std::make_unique<VectorSource>(std::vector<Record>{}));

  eng.start();
  const auto stats = eng.drain();

  std::printf("fleet: %zu streams over %zu shared hierarchies on %zu "
              "workers / %zu ingest threads\n",
              stats.streams, stats.distinctHierarchies,
              stats.scheduler.workers, stats.ingestThreads);
  for (const auto& s : stats.perStream) {
    std::printf("  %-11s units=%-4zu records=%-6zu anomalies=%-3zu "
                "runs=%-3zu requeues=%zu\n",
                s.name.c_str(), s.unitsProcessed, s.recordsProcessed,
                s.anomaliesReported, s.runs, s.requeues);
  }
  std::printf("scheduler: claims=%zu requeues=%zu max-ready=%zu "
              "backpressure-waits=%zu\n",
              stats.scheduler.claims, stats.scheduler.requeues,
              stats.scheduler.maxReadyStreams,
              stats.scheduler.backpressureWaits);
  std::printf("busiest stream: %zu of %zu units (share %.2f)\n",
              stats.busiestStreamUnits, stats.unitsProcessed,
              stats.busiestStreamShare);
  std::printf("%zu records in %.3fs (%.0f records/sec)\n",
              stats.recordsProcessed, stats.elapsedSeconds,
              stats.recordsPerSecond);
  return 0;
}
