// Customer-care scenario (the paper's CCD case study, §II/§VII-B):
// a month of synthetic customer calls over the SHO/VHO/IO/CO/DSLAM network
// hierarchy, with injected incidents at several network levels. Runs the
// full pipeline — automatic seasonality analysis, ADA detection, anomaly
// store — and prints an operator-style incident digest.
//
//   $ ./customer_care [seed]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "report/store.h"
#include "workload/ccd.h"

using namespace tiresias;
using namespace tiresias::workload;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  const auto spec = ccdNetworkWorkload(Scale::kMedium);
  const auto& h = spec.hierarchy;
  std::printf("CCD network hierarchy: %zu nodes (%zu DSLAMs)\n", h.size(),
              h.leafCount());

  // Incidents: one regional (VHO) outage and two metro (IO/CO) events.
  GroundTruthLedger ledger;
  ledger.add({h.find("VHO1"), 9 * 96 + 60, 4, 220.0});
  ledger.add({h.find("VHO0/IO2"), 13 * 96 + 40, 3, 60.0});
  ledger.add({h.find("VHO2/IO0/CO1"), 20 * 96 + 70, 6, 35.0});
  auto injector = std::make_shared<AnomalyInjector>(h, ledger);
  std::printf("injected incidents:\n");
  for (const auto& s : ledger.specs()) {
    std::printf("  %-22s units [%lld, %lld)  +%.0f calls/unit\n",
                h.path(s.node).c_str(), static_cast<long long>(s.startUnit),
                static_cast<long long>(s.startUnit +
                                       static_cast<TimeUnit>(s.durationUnits)),
                s.extraPerUnit);
  }

  GeneratorSource source(spec, 0, 28 * 96, seed, injector);

  PipelineConfig cfg;
  cfg.delta = spec.unit;
  cfg.detector.theta = 10.0;
  cfg.detector.windowLength = 7 * 96;  // one week of history
  cfg.detector.referenceLevels = 2;
  cfg.candidatePeriods = {96, 672};  // let Step 3 pick day/week seasons
  TiresiasPipeline pipeline(borrowHierarchy(h), cfg);
  report::AnomalyStore store(h);

  const auto summary =
      pipeline.run(source, [&](const InstanceResult& r) { store.add(r); });

  std::printf("\nprocessed %zu units / %zu calls; %zu detection instances\n",
              summary.unitsProcessed, summary.recordsProcessed,
              summary.instancesDetected);
  std::printf("seasonality chosen: ");
  for (const auto& s : summary.seasons) {
    std::printf("%zu-unit season (weight %.2f)  ", s.period, s.weight);
  }
  std::printf("\n%zu anomalies stored\n\n", store.size());

  // Operator digest: anomalies grouped per injected incident window.
  for (const auto& s : ledger.specs()) {
    report::Query q;
    q.fromUnit = s.startUnit;
    q.toUnit = s.startUnit + static_cast<TimeUnit>(s.durationUnits) - 1;
    const auto hits = store.query(q);
    std::printf("incident at %s:\n", h.path(s.node).c_str());
    if (hits.empty()) std::printf("  (missed)\n");
    for (const auto& hit : hits) {
      std::printf("  unit %lld  %-28s actual=%.0f forecast=%.1f\n",
                  static_cast<long long>(hit.anomaly.unit), hit.path.c_str(),
                  hit.anomaly.actual, hit.anomaly.forecast);
    }
  }

  // Anomalies by network level — the "previously unknown anomalies hidden
  // in the lower levels" of the paper's abstract.
  const auto byDepth = store.countByDepth();
  std::printf("\nanomalies by network level: ");
  const char* levels[] = {"", "SHO", "VHO", "IO", "CO", "DSLAM"};
  for (int d = 1; d <= h.height(); ++d) {
    std::printf("%s=%zu  ", levels[d], byDepth[static_cast<std::size_t>(d)]);
  }
  std::printf("\n");

  store.exportCsv("customer_care_anomalies.csv");
  std::printf("full report written to customer_care_anomalies.csv\n");
  return 0;
}
